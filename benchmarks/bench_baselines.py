"""Section 3: HNS binding vs the reregistration-based baselines.

"The interim HRPC binding mechanism ... took 200 msec. ... We
implemented such a scheme on top of the Clearinghouse, and found that
binding took 166 msec. ... this comparison shows that the tuned HNS
performance is reasonably close to that of homogeneous name services."
"""

import pytest

from repro.baselines import LocalFileBinder, ReregistrationBinder
from repro.clearinghouse import ClearinghouseClient
from repro.core import Arrangement
from repro.harness import ComparisonTable
from repro.localfiles import BindingFileEntry, LocalBindingFile, Replicator
from repro.workloads import build_stack, build_testbed
from repro.workloads.scenarios import CREDENTIALS

from conftest import FIJI, run, timed


def measure_localfile(seed=51):
    testbed = build_testbed(seed=seed)
    env = testbed.env
    replica = LocalBindingFile(testbed.client, testbed.calibration)
    replicator = Replicator(testbed.internet, testbed.udp, [replica])
    run(
        env,
        replicator.publish(
            testbed.client,
            BindingFileEntry(
                "DesiredService",
                "fiji.cs.washington.edu",
                str(testbed.fiji.address),
                9999,
            ),
        ),
    )
    binder = LocalFileBinder(testbed.client, replica, testbed.calibration)
    return timed(
        env, binder.import_binding("DesiredService", "fiji.cs.washington.edu")
    )


def measure_ch_rereg(seed=52):
    testbed = build_testbed(seed=seed)
    env = testbed.env
    store = ClearinghouseClient(
        testbed.client, testbed.tcp, testbed.ch_endpoint, CREDENTIALS
    )
    binder = ReregistrationBinder(testbed.client, store, "bindings", testbed.calibration)
    run(
        env,
        binder.reregister(
            "DesiredService",
            "fiji.cs.washington.edu",
            str(testbed.fiji.address),
            9999,
        ),
    )
    return timed(
        env, binder.import_binding("DesiredService", "fiji.cs.washington.edu")
    )


def measure_hns_band(seed=53):
    """(best, worst) HNS binding over arrangements x cache states."""
    best, worst = float("inf"), 0.0
    for arrangement in (Arrangement.ALL_LOCAL, Arrangement.ALL_REMOTE):
        testbed = build_testbed(seed=seed)
        stack = build_stack(testbed, arrangement)
        env = testbed.env
        stack.flush_all_caches()
        cold = timed(env, stack.importer.import_binding("DesiredService", FIJI))
        warm = timed(env, stack.importer.import_binding("DesiredService", FIJI))
        best = min(best, warm)
        worst = max(worst, cold)
    return best, worst


@pytest.mark.benchmark(group="baselines")
def test_binding_scheme_comparison(benchmark):
    def measure():
        return measure_localfile(), measure_ch_rereg(), measure_hns_band()

    localfile_ms, rereg_ms, (hns_best, hns_worst) = benchmark(measure)
    table = ComparisonTable("Binding scheme comparison (msec)")
    table.add("interim replicated local files", 200.0, localfile_ms)
    table.add("reregistration into Clearinghouse", 166.0, rereg_ms)
    table.add("HNS binding, best case (all local, all hit)", 104.0, hns_best)
    table.add("HNS binding, worst case (all remote, all miss)", 547.0, hns_worst)
    print()
    print(table.render())
    table.check(tolerance_pct=2.0)
    # The paper's qualitative claims:
    # 1. tuned (cached) HNS beats both reregistration baselines;
    assert hns_best < rereg_ms < localfile_ms
    # 2. untuned (cold) HNS is several times slower than either.
    assert hns_worst > 2 * rereg_ms


@pytest.mark.benchmark(group="baselines")
def test_reregistration_cost_is_unending(benchmark):
    """The cost the HNS avoids: publishing updates grows linearly in
    system size, and never stops."""

    def measure():
        testbed = build_testbed(seed=54)
        env = testbed.env
        costs = []
        for n_replicas in (2, 8, 32):
            hosts = [testbed.client] + [
                testbed.internet.add_host(f"r{n_replicas}-{i}")
                for i in range(n_replicas - 1)
            ]
            files = [LocalBindingFile(h, testbed.calibration) for h in hosts]
            replicator = Replicator(testbed.internet, testbed.udp, files)
            entry = BindingFileEntry(
                "svc", "h.dom", str(testbed.fiji.address), 1
            )
            costs.append(
                (n_replicas, timed(env, replicator.publish(testbed.client, entry)))
            )
        return costs

    costs = benchmark(measure)
    print("\nreplication cost by system size:")
    for n, ms in costs:
        print(f"  {n:>3} replicas: {ms:8.1f} ms per update")
    assert costs[-1][1] > 8 * costs[0][1]
