"""Table 3.1: HRPC binding performance across colocation arrangements.

Regenerates the paper's 5 (colocation arrangements) x 3 (cache states)
grid of HRPC import latencies for Sun RPC servers, in simulated msec.
"""

import pytest

from repro.core import Arrangement
from repro.harness import ComparisonTable

from conftest import PAPER_TABLE_3_1, measure_table_3_1_row

COLUMNS = ("A. cache miss", "B. HNS cache hit", "C. HNS and NSM cache hit")


def full_grid():
    return {arr: measure_table_3_1_row(arr) for arr in Arrangement}


@pytest.mark.benchmark(group="table-3.1")
def test_table_3_1_grid(benchmark):
    grid = benchmark(full_grid)
    table = ComparisonTable("Table 3.1: HRPC binding by colocation (msec)")
    for arrangement, cells in grid.items():
        for column, paper, measured in zip(
            COLUMNS, PAPER_TABLE_3_1[arrangement], cells
        ):
            table.add(f"{arrangement.label} / {column}", paper, measured)
            benchmark.extra_info[f"{arrangement.name}/{column}"] = round(measured, 1)
    print()
    print(table.render())
    # Shape checks: row/column orderings the paper's analysis rests on.
    for arrangement, (a, b, c) in grid.items():
        assert a > b > c
    assert grid[Arrangement.ALL_REMOTE][0] > grid[Arrangement.ALL_LOCAL][0]
    assert grid[Arrangement.ALL_LOCAL] == pytest.approx((460, 180, 104), rel=0.005)
    table.check(tolerance_pct=8.0)


@pytest.mark.benchmark(group="table-3.1")
def test_caching_beats_colocation(benchmark):
    """'the potential benefit of caching far exceeds that obtainable
    solely by colocation' — the table's major lesson."""

    def gains():
        local = measure_table_3_1_row(Arrangement.ALL_LOCAL)
        remote = measure_table_3_1_row(Arrangement.ALL_REMOTE)
        colocation_gain = remote[0] - local[0]  # move everything local
        caching_gain = remote[0] - remote[2]  # warm every cache
        return colocation_gain, caching_gain

    colocation_gain, caching_gain = benchmark(gains)
    print(
        f"\ncolocation saves {colocation_gain:.0f} ms; "
        f"caching saves {caching_gain:.0f} ms "
        f"({caching_gain / colocation_gain:.1f}x)"
    )
    benchmark.extra_info["colocation_gain_ms"] = round(colocation_gain, 1)
    benchmark.extra_info["caching_gain_ms"] = round(caching_gain, 1)
    assert caching_gain > 3 * colocation_gain
