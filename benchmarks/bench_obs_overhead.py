"""Observability overhead: what tracing costs, and what it must not.

The :mod:`repro.obs` contract has two halves:

1. **zero simulated cost** — spans never schedule events, charge CPU,
   or advance any workload RNG stream, so the simulated latency of an
   import is bit-identical whether tracing is off, sampled, or fully
   on with the metrics pipeline attached;
2. **bounded host cost** — the wall-clock overhead of recording spans
   is the only price, it scales with the sampling rate, and the
   off-mode price is one attribute check per instrumentation site.

This bench runs the same mixed cold/warm import workload under the
three modes and records both halves in ``BENCH_obs_overhead.json``.

Set ``REPRO_BENCH_SMOKE=1`` for a reduced configuration (CI smoke).
"""

import os
import time

from repro.core import Arrangement
from repro.obs import SpanMetrics
from repro.workloads import build_stack, build_testbed

from conftest import FIJI, timed, write_bench_results

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: imports per mode; every 4th runs against flushed (cold) caches
IMPORTS = 8 if SMOKE else 48

MODES = ("off", "sampled", "full")


def run_mode(mode):
    """One workload pass; returns (sim latencies, wall seconds, env)."""
    testbed = build_testbed(seed=23)
    stack = build_stack(testbed, Arrangement.ALL_LOCAL)
    env = testbed.env
    if mode == "sampled":
        env.obs.enable(sample_every=16)
    elif mode == "full":
        env.obs.enable(metrics=SpanMetrics(env))
    latencies = []
    wall_start = time.perf_counter()
    for i in range(IMPORTS):
        if i % 4 == 0:
            stack.flush_all_caches()
        latencies.append(
            timed(env, stack.importer.import_binding("DesiredService", FIJI))
        )
    wall = time.perf_counter() - wall_start
    return latencies, wall, env


def test_obs_overhead_modes():
    results = {}
    latencies_by_mode = {}
    for mode in MODES:
        latencies, wall, env = run_mode(mode)
        latencies_by_mode[mode] = latencies
        results[mode] = {
            "imports": IMPORTS,
            "spans": len(env.obs.spans),
            "dropped": env.obs.dropped,
            "sim_total_ms": sum(latencies),
            "wall_ms_total": wall * 1_000.0,
            "wall_us_per_import": wall * 1_000_000.0 / IMPORTS,
        }
        if mode == "full":
            histograms = env.stats.histograms()
            results[mode]["histograms"] = len(
                [n for n in histograms if n.startswith("obs.span.")]
            )
            assert "obs.span.hrpc.import" in histograms

    # Half 1: tracing never moves simulated time — bit-identical.
    assert latencies_by_mode["off"] == latencies_by_mode["sampled"]
    assert latencies_by_mode["off"] == latencies_by_mode["full"]

    # Half 2: the span volume follows the mode; off records nothing.
    assert results["off"]["spans"] == 0
    assert 0 < results["sampled"]["spans"] < results["full"]["spans"]

    off_wall = results["off"]["wall_ms_total"]
    print()
    print(f"obs overhead over {IMPORTS} imports (cold every 4th):")
    for mode in MODES:
        row = results[mode]
        ratio = row["wall_ms_total"] / off_wall if off_wall else float("nan")
        row["wall_vs_off"] = ratio
        print(
            f"  {mode:>8}: {row['spans']:5d} spans, "
            f"{row['sim_total_ms']:9.1f} sim ms, "
            f"{row['wall_ms_total']:7.1f} wall ms ({ratio:4.2f}x off)"
        )
    write_bench_results("obs_overhead", "modes", results)
