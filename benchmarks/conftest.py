"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's
evaluation, prints a paper-vs-measured comparison (run with ``-s`` to
see it inline; values also land in ``benchmark.extra_info``), and
asserts the reproduction tolerance recorded in EXPERIMENTS.md.
"""

import json
import os
import pathlib

import pytest

from repro.core import Arrangement, HNSName
from repro.harness.ablation import SCHEMA_VERSION
from repro.workloads import build_stack, build_testbed

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

FIJI = HNSName("BIND-cs", "fiji.cs.washington.edu")
DLION = HNSName("CH-hcs", "dlion:hcs:uw")

#: Table 3.1 of the paper (msec): arrangement -> (miss, HNS hit, both hit)
PAPER_TABLE_3_1 = {
    Arrangement.ALL_LOCAL: (460.0, 180.0, 104.0),
    Arrangement.AGENT: (517.0, 235.0, 137.0),
    Arrangement.REMOTE_HNS: (515.0, 232.0, 140.0),
    Arrangement.REMOTE_NSMS: (509.0, 225.0, 147.0),
    Arrangement.ALL_REMOTE: (547.0, 261.0, 181.0),
}

#: Table 3.2 of the paper (msec): records -> (miss, marshalled hit,
#: demarshalled hit)
PAPER_TABLE_3_2 = {1: (20.23, 11.11, 0.83), 6: (32.34, 26.17, 1.22)}


def run(env, gen):
    return env.run(until=env.process(gen))


def timed(env, gen):
    """Run a process; return elapsed simulated ms."""
    start = env.now
    run(env, gen)
    return env.now - start


def measure_table_3_1_row(arrangement, seed=3):
    """(miss, hns_hit, both_hit) simulated ms for one arrangement."""
    testbed = build_testbed(seed=seed)
    stack = build_stack(testbed, arrangement)
    env = testbed.env

    def one_import():
        return stack.importer.import_binding("DesiredService", FIJI)

    stack.flush_all_caches()
    a = timed(env, one_import())
    stack.flush_nsm_caches()
    b = timed(env, one_import())
    c = timed(env, one_import())
    return a, b, c


def _json_key(key):
    if isinstance(key, str):
        return key
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)


def _jsonable(value):
    """Dicts with tuple keys -> string keys, recursively."""
    if isinstance(value, dict):
        return {_json_key(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def write_bench_results(bench_name, section, payload, wall_s=None, vs_baseline=None):
    """Merge ``payload`` under ``section`` in BENCH_<bench_name>.json.

    Machine-readable companion to the printed tables, written at the
    repo root so CI and later sessions can diff results without
    re-parsing pytest output.  Every file carries the schema-v2
    envelope (``schema_version``, ``smoke``, ``wall_s``,
    ``vs_baseline``, ``sections``) so the perf gate
    (:mod:`repro.harness.gate`) parses all of them uniformly; files
    written by older sessions are migrated in place on first merge.
    """
    path = REPO_ROOT / f"BENCH_{bench_name}.json"
    results = {}
    if path.exists():
        try:
            results = json.loads(path.read_text())
        except ValueError:
            results = {}
    if results.get("schema_version") != SCHEMA_VERSION:
        # Pre-envelope file: its top level was the sections dict.
        results = {"sections": results}
    results["schema_version"] = SCHEMA_VERSION
    results["bench"] = bench_name
    results["smoke"] = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    results.setdefault("wall_s", None)
    results.setdefault("vs_baseline", None)
    if wall_s is not None:
        results["wall_s"] = wall_s
    if vs_baseline is not None:
        results["vs_baseline"] = _jsonable(vs_baseline)
    results.setdefault("sections", {})[section] = _jsonable(payload)
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")


@pytest.fixture
def fresh_testbed():
    return build_testbed(seed=17)
