"""Table 3.2: the effect of marshalling costs on cache access speed.

Regenerates the {cache miss, marshalled hit, demarshalled hit} x
{1 resource record, 6 resource records} grid, plus the paper's
comparison against the standard BIND marshalling routines (0.65 and
2.6 msec).
"""

import pytest

from repro.bind import BindResolver, CacheFormat, ResolverCache
from repro.harness import ComparisonTable
from repro.serial import HandcodedMarshaller, StubCompiler
from repro.bind.messages import QUERY_RESPONSE_IDL, QueryResponse, STATUS_OK
from repro.workloads import build_testbed

from conftest import PAPER_TABLE_3_2, timed

#: names in the testbed's public BIND resolving to 1 and 6 records
NAMES = {1: "fiji.cs.washington.edu", 6: "gateway.gw.net"}


def _testbed_with_gateway(seed=31):
    """Testbed plus a 6-address gateway record (Table 3.2's 6-RR case)."""
    from repro.bind import ResourceRecord, Zone

    testbed = build_testbed(seed=seed)
    zone = Zone("gw.net")
    for i in range(6):
        zone.add(ResourceRecord.a_record("gateway.gw.net", f"10.0.0.{i + 1}"))
    testbed.public_server.add_zone(zone)
    return testbed


def measure_cell(testbed, records, fmt):
    """(miss, hit) simulated ms through the HNS's generated-marshalling
    BIND interface with the given cache format."""
    env = testbed.env
    cache = ResolverCache(env, fmt=fmt, calibration=testbed.calibration)
    resolver = BindResolver(
        testbed.client,
        testbed.udp,
        testbed.public_endpoint,
        marshalling="generated",
        cache=cache,
        calibration=testbed.calibration,
    )
    miss = timed(env, resolver.lookup(NAMES[records]))
    hit = timed(env, resolver.lookup(NAMES[records]))
    return miss, hit


def full_grid():
    out = {}
    for records in (1, 6):
        testbed = _testbed_with_gateway()
        # Use the meta server's light-load cost profile for this cache
        # experiment, as the paper's Table 3.2 did (its misses are far
        # cheaper than a 27 ms public lookup).
        testbed.public_server.lookup_cost_ms = testbed.calibration.meta_bind_lookup_ms
        miss, dem_hit = measure_cell(testbed, records, CacheFormat.DEMARSHALLED)
        testbed2 = _testbed_with_gateway(seed=32)
        testbed2.public_server.lookup_cost_ms = testbed2.calibration.meta_bind_lookup_ms
        _, mar_hit = measure_cell(testbed2, records, CacheFormat.MARSHALLED)
        out[records] = (miss, mar_hit, dem_hit)
    return out


@pytest.mark.benchmark(group="table-3.2")
def test_table_3_2_grid(benchmark):
    grid = benchmark(full_grid)
    table = ComparisonTable("Table 3.2: marshalling costs vs cache access speed (msec)")
    for records, cells in grid.items():
        labels = ("cache miss", "marshalled cache hit", "demarshalled cache hit")
        for label, paper, measured in zip(labels, PAPER_TABLE_3_2[records], cells):
            table.add(f"{records} RR / {label}", paper, measured)
            benchmark.extra_info[f"{records}RR/{label}"] = round(measured, 2)
    print()
    print(table.render())
    # Shape: demarshalled caching is the decisive win at every size.
    for records, (miss, mar_hit, dem_hit) in grid.items():
        assert miss > mar_hit > dem_hit
        assert mar_hit / dem_hit > 8  # "the times decreased dramatically"
    # Hit columns are calibrated exactly; the miss column within 11%
    # (the paper's own miss deltas are non-monotone in response size).
    for records in (1, 6):
        _, mar_hit, dem_hit = grid[records]
        paper_miss, paper_mar, paper_dem = PAPER_TABLE_3_2[records]
        assert mar_hit == pytest.approx(paper_mar, rel=0.005)
        assert dem_hit == pytest.approx(paper_dem, rel=0.005)
        assert grid[records][0] == pytest.approx(paper_miss, rel=0.11)


@pytest.mark.benchmark(group="table-3.2")
def test_standard_vs_generated_marshalling(benchmark):
    """'the standard BIND marshalling routines ... take .65 msec and 2.6
    msec for one and six resource record lookups' vs the generated
    routines' 10.28 / 24.95 ms."""

    def measure():
        from repro.bind import ResourceRecord

        compiler = StubCompiler()
        generated = compiler.marshaller(QUERY_RESPONSE_IDL)
        handcoded = HandcodedMarshaller(QUERY_RESPONSE_IDL)
        out = {}
        for n in (1, 6):
            response = QueryResponse(
                STATUS_OK,
                [ResourceRecord.a_record(NAMES[1], "128.95.1.4") for _ in range(n)],
            ).to_idl()
            wire, _ = handcoded.encode(response)
            _, hand_cost = handcoded.decode(wire)
            _, gen_cost = generated.decode(wire)
            out[n] = (hand_cost, gen_cost)
        return out

    costs = benchmark(measure)
    table = ComparisonTable("Standard vs generated marshalling (msec)")
    table.add("standard, 1 RR", 0.65, costs[1][0])
    table.add("standard, 6 RR", 2.60, costs[6][0])
    table.add("generated, 1 RR (Table 3.2 delta)", 10.28, costs[1][1])
    table.add("generated, 6 RR (Table 3.2 delta)", 24.95, costs[6][1])
    print()
    print(table.render())
    table.check(tolerance_pct=1.0)
    for n in (1, 6):
        assert costs[n][1] / costs[n][0] > 8
