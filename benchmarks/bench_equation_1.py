"""Section 3 "Caching And Colocation": equation (1).

"remote location is preferable whenever

    q > C(remote call) / (C(cache miss) - C(cache hit))        (1)

... we calculate that the cache hit fraction obtained when the HNS is
remote must exceed that when it is local by an additional 11% ...
an additional 42% cache hit must be experienced by the remote NSMs for
them to be preferable to local copies."
"""

import pytest

from repro.core import Arrangement, ColocationModel
from repro.harness import ComparisonTable

from conftest import measure_table_3_1_row


def thresholds_from_paper_estimates():
    """The paper's own arithmetic, reproduced with its estimates."""
    hns = ColocationModel(remote_call_ms=33, cache_miss_ms=547, cache_hit_ms=261)
    nsm = ColocationModel(remote_call_ms=33, cache_miss_ms=225, cache_hit_ms=147)
    return hns.q_threshold(), nsm.q_threshold()


def thresholds_from_measured_cells():
    """Same analysis on *our* measured Table 3.1 cells.

    HNS placement: compare row 5 (remote HNS+NSMs) miss/HNS-hit cells;
    NSM placement: row 4 both-hit vs HNS-hit cells, as the paper does.
    """
    row5 = measure_table_3_1_row(Arrangement.ALL_REMOTE)
    row4 = measure_table_3_1_row(Arrangement.REMOTE_NSMS)
    remote_call = 34.2  # our raw-suite remote call (paper estimated 33)
    hns = ColocationModel(remote_call, cache_miss_ms=row5[0], cache_hit_ms=row5[1])
    nsm = ColocationModel(remote_call, cache_miss_ms=row4[1], cache_hit_ms=row4[2])
    return hns.q_threshold(), nsm.q_threshold()


@pytest.mark.benchmark(group="equation-1")
def test_equation_1_thresholds(benchmark):
    def measure():
        return thresholds_from_paper_estimates(), thresholds_from_measured_cells()

    (paper_hns, paper_nsm), (our_hns, our_nsm) = benchmark(measure)
    table = ComparisonTable("Equation (1): extra hit fraction for remote placement", unit="%")
    table.add("HNS (paper's estimates)", 11.5, 100 * paper_hns)
    table.add("NSMs (paper's estimates)", 42.3, 100 * paper_nsm)
    table.add("HNS (our measured cells)", 11.5, 100 * our_hns)
    table.add("NSMs (our measured cells)", 42.3, 100 * our_nsm)
    print()
    print(table.render())
    # The paper's arithmetic reproduces exactly; our own cells give the
    # same qualitative answer: a remote HNS needs only a small hit-rate
    # edge, remote NSMs need a large one.
    assert paper_hns == pytest.approx(0.115, abs=0.005)
    assert paper_nsm == pytest.approx(0.423, abs=0.01)
    assert our_hns < 0.20
    assert our_nsm > 0.30
    assert our_nsm > 2.5 * our_hns


@pytest.mark.benchmark(group="equation-1")
def test_equation_1_verified_by_simulation(benchmark):
    """Drive workloads at controlled hit rates on both sides of the
    threshold and confirm the cheaper placement flips where predicted."""

    def simulate(p, q, model):
        return model.local_cost(p), model.remote_cost(p, q)

    def measure():
        row5 = measure_table_3_1_row(Arrangement.ALL_REMOTE, seed=71)
        model = ColocationModel(34.2, cache_miss_ms=row5[0], cache_hit_ms=row5[1])
        threshold = model.q_threshold()
        below = simulate(0.4, threshold * 0.5, model)
        above = simulate(0.4, min(threshold * 1.5, 0.6), model)
        return threshold, below, above

    threshold, (local_b, remote_b), (local_a, remote_a) = benchmark(measure)
    print(
        f"\nq threshold = {100 * threshold:.1f}%  |  "
        f"below: local {local_b:.0f} < remote {remote_b:.0f}  |  "
        f"above: remote {remote_a:.0f} < local {local_a:.0f}"
    )
    assert local_b < remote_b      # below threshold: keep it local
    assert remote_a < local_a      # above threshold: go remote
