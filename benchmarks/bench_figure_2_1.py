"""Figure 2.1: HNS query processing.

The figure shows a client asking the HNS for an NSM, being handed a
handle for the Clearinghouse NSM (or the BIND NSM for a later query),
and calling it.  This bench regenerates the flow as an event trace plus
a per-step latency breakdown, for a Clearinghouse-context query
followed by a BIND-context query — "the client does not need to be
aware of which name service it is calling."
"""

import pytest

from repro.core import Arrangement
from repro.workloads import build_stack, build_testbed

from conftest import DLION, FIJI, run


def drive_figure_2_1(seed=81):
    """Run the two-query scenario; return (trace records, step timings)."""
    testbed = build_testbed(seed=seed)
    env = testbed.env
    env.trace.enabled = True
    # NSMs for both name services linked into the client, as in the
    # figure's single-client view.
    ch_stack = build_stack(testbed, Arrangement.ALL_LOCAL, name_service="CH-hcs")
    bind_nsm = testbed.make_bind_binding_nsm(testbed.client)
    ch_stack.hns.link_local_nsm(bind_nsm)
    ch_stack.importer.nsm_stub.link_local(bind_nsm)

    timings = {}
    start = env.now
    ch_binding = run(env, ch_stack.importer.import_binding("PrintService", DLION))
    timings["query 1 (Clearinghouse context)"] = env.now - start
    start = env.now
    bind_binding = run(
        env, ch_stack.importer.import_binding("DesiredService", FIJI)
    )
    timings["query 2 (BIND context)"] = env.now - start
    return env.trace.records, timings, ch_binding, bind_binding


@pytest.mark.benchmark(group="figure-2.1")
def test_figure_2_1_query_processing(benchmark):
    records, timings, ch_binding, bind_binding = benchmark(drive_figure_2_1)
    print("\nFigure 2.1 — HNS query processing, event trace:")
    for record in records:
        if record.category in ("hns", "nsm", "import", "clearinghouse", "bind"):
            print(f"  {record}")
    print("per-query latency:")
    for label, ms in timings.items():
        print(f"  {label}: {ms:.1f} ms")
    # The figure's content: the same client flow reaches both NSMs and
    # both underlying name services, returning suite-correct bindings.
    categories = {r.category for r in records}
    assert {"hns", "nsm", "import"} <= categories
    hns_msgs = [r.message for r in records if r.category == "hns"]
    assert any("HRPCBinding-CH-hcs" in m for m in hns_msgs)
    assert any("HRPCBinding-BIND-cs" in m for m in hns_msgs)
    assert ch_binding.suite == "courier"
    assert bind_binding.suite == "sunrpc"
    # The Clearinghouse-backed query costs more (auth + disk, 156 vs 27
    # ms native), visible end-to-end.
    assert timings["query 1 (Clearinghouse context)"] > timings[
        "query 2 (BIND context)"
    ]


@pytest.mark.benchmark(group="figure-2.1")
def test_client_is_agnostic_to_name_service(benchmark):
    """Both queries used the identical client interface: one importer,
    one call shape — the central claim the figure illustrates."""

    def measure():
        _, timings, ch_binding, bind_binding = drive_figure_2_1(seed=82)
        return timings, ch_binding, bind_binding

    timings, ch_binding, bind_binding = benchmark(measure)
    # Results are the same standardized shape.
    assert type(ch_binding) is type(bind_binding)
    assert {ch_binding.suite, bind_binding.suite} == {"courier", "sunrpc"}
