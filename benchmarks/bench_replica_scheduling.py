"""Replica-aware meta reads: what scheduling, hedging, and IXFR buy.

The :class:`~repro.resolution.ReplicaPolicy` layer is a performance
extension beyond the paper's prototype, whose resolver walks a static
primary-then-secondaries list and whose replicas refresh by full zone
transfer.  Two benches measure it against that baseline:

1. tail latency with one degraded replica — closed-loop lookups against
   a three-replica set whose primary intermittently stalls past the
   transport timeout; hedged + adaptive selection vs the prototype's
   ordered failover (``ReplicaPolicy.disabled()``);
2. refresh cost vs churn — the simulated cost of a secondary refresh
   and of a cache re-preload as a function of how many records changed,
   incremental (IXFR) vs full (AXFR) transfer.

Set ``REPRO_BENCH_SMOKE=1`` for a reduced configuration (CI smoke).
"""

import os

import pytest

from repro.bind import BindResolver, BindServer, ResourceRecord, RRType, SecondaryBindServer, Zone
from repro.bind.cache import ResolverCache
from repro.harness import DEFAULT_CALIBRATION
from repro.net import DatagramTransport, Internetwork
from repro.resolution import ReplicaPolicy
from repro.sim import ConstantLatency, Environment

from conftest import run, write_bench_results
from bench_fast_path import idle, percentile

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
CAL = DEFAULT_CALIBRATION


def rec(name, text, ttl=3_600_000):
    return ResourceRecord.text_record(name, text, rtype=RRType.UNSPEC, ttl=ttl)


class FlakyServer(BindServer):
    """A BindServer that intermittently stalls past the client timeout."""

    def __init__(self, *args, stall_ms=0.0, stall_probability=0.0, **kwargs):
        super().__init__(*args, **kwargs)
        self.stall_ms = stall_ms
        self.stall_probability = stall_probability
        self._rng = self.env.rng.stream(f"bench.stall:{self.name}")

    def handle(self, datagram, responder):
        if self.stall_ms and self._rng.random() < self.stall_probability:
            yield self.env.timeout(self.stall_ms)
        yield from super().handle(datagram, responder)


# ----------------------------------------------------------------------
# 1. Tail latency with one degraded replica
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="replica_scheduling")
def test_tail_latency_one_degraded_replica(benchmark):
    """The prototype's ordered failover pays the full transport timeout
    every time the (always-first) primary stalls; a hedged query
    re-issues after the latency quantile and takes the secondary's
    answer instead, so the degradation never reaches the tail."""
    LOOKUPS = 120 if SMOKE else 500
    STALL_MS = 400.0
    STALL_P = 0.15
    CONFIGS = (
        ("hedged", ReplicaPolicy()),
        ("ordered failover", ReplicaPolicy.disabled()),
    )

    def run_config(replica_policy):
        env = Environment(seed=61)
        net = Internetwork(env)
        seg = net.add_segment(
            latency=ConstantLatency(CAL.wire_base_ms, CAL.wire_per_byte_ms)
        )
        client = net.add_host("client", seg)
        hosts = [net.add_host(f"ns{i}", seg) for i in range(3)]

        def make_zone():
            zone = Zone("hns")
            zone.add(rec("a.ctx.hns", "ns=one"))
            return zone

        # The primary is the flaky one; both secondaries are healthy.
        primary = FlakyServer(
            hosts[0],
            zones=[make_zone()],
            lookup_cost_ms=CAL.meta_bind_lookup_ms,
            stall_ms=STALL_MS,
            stall_probability=STALL_P,
        )
        replicas = [
            BindServer(
                host,
                zones=[make_zone()],
                lookup_cost_ms=CAL.meta_bind_lookup_ms,
            )
            for host in hosts[1:]
        ]
        primary_ep = primary.listen()
        secondary_eps = [replica.listen() for replica in replicas]
        udp = DatagramTransport(net, retries=0, retry_timeout_ms=100)
        resolver = BindResolver(
            client,
            udp,
            primary_ep,
            secondaries=secondary_eps,
            replica_policy=replica_policy,
            name="bench",
        )
        latencies = []

        def client_loop():
            for _ in range(LOOKUPS):
                start = env.now
                yield from resolver.lookup("a.ctx.hns", RRType.UNSPEC)
                latencies.append(env.now - start)
                yield env.timeout(5.0)

        run(env, client_loop())
        idle(env, 2_000)  # drain hedge-loser legs
        counters = env.stats.counters()
        return {
            "lookups": len(latencies),
            "p50_ms": percentile(latencies, 50),
            "p99_ms": percentile(latencies, 99),
            "max_ms": max(latencies),
            "hedges": counters.get("bind.bench.hedges", 0),
            "failovers": counters.get("bind.bench.failovers", 0),
        }

    def measure():
        return {label: run_config(policy) for label, policy in CONFIGS}

    table = benchmark(measure)
    write_bench_results("replica_scheduling", "tail_latency_one_degraded_replica", table)
    print(
        f"\ntail latency, primary stalls {STALL_MS:.0f} ms with "
        f"p={STALL_P} ({LOOKUPS} lookups):"
    )
    for label, row in table.items():
        print(
            f"  {label:<17} p50 {row['p50_ms']:6.1f} ms, "
            f"p99 {row['p99_ms']:6.1f} ms, max {row['max_ms']:6.1f} ms, "
            f"{row['hedges']:3d} hedges, {row['failovers']:3d} failovers"
        )
    hedged = table["hedged"]
    ordered = table["ordered failover"]
    # Acceptance: hedging cuts the degraded-replica p99 by >=2x and
    # actually fired; the ordered baseline eats the transport timeout.
    assert hedged["hedges"] > 0
    assert hedged["p99_ms"] <= ordered["p99_ms"] / 2.0
    assert ordered["p99_ms"] >= 100.0


# ----------------------------------------------------------------------
# 2. Refresh cost vs churn: IXFR vs AXFR
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="replica_scheduling")
def test_refresh_cost_vs_churn(benchmark):
    """A full AXFR refresh costs the same whether one record changed or
    a hundred; an incremental refresh streams and installs only the
    journal delta, so its steady-state cost is proportional to churn."""
    ZONE_RECORDS = 120 if SMOKE else 300
    CHURN_LEVELS = (1, 5, 25, 100)

    def build_replicated(replica_policy):
        env = Environment(seed=62)
        net = Internetwork(env)
        seg = net.add_segment(
            latency=ConstantLatency(CAL.wire_base_ms, CAL.wire_per_byte_ms)
        )
        net.add_host("client", seg)
        primary_host = net.add_host("ns-primary", seg)
        secondary_host = net.add_host("ns-secondary", seg)
        zone = Zone("hns")
        for i in range(ZONE_RECORDS):
            zone.add(rec(f"x{i}.ctx.hns", f"ns=x{i}"))
        primary = BindServer(
            primary_host,
            zones=[zone],
            allow_dynamic_update=True,
            lookup_cost_ms=CAL.meta_bind_lookup_ms,
        )
        primary_ep = primary.listen()
        udp = DatagramTransport(net, retries=0, retry_timeout_ms=100)
        secondary = SecondaryBindServer(
            secondary_host,
            primary_ep,
            origins=["hns"],
            transport=udp,
            refresh_ms=60_000,
            lookup_cost_ms=CAL.meta_bind_lookup_ms,
            replica_policy=replica_policy,
        )
        secondary.listen()
        run(env, secondary.refresh_once())  # initial (full) sync
        return env, zone, secondary

    def churn(zone, updates, round_index):
        # Replace, not add: the zone size stays fixed while the journal
        # accumulates exactly ``updates`` deltas.
        for i in range(updates):
            zone.replace(
                f"x{i}.ctx.hns",
                RRType.UNSPEC,
                [rec(f"x{i}.ctx.hns", f"ns=x{i}-r{round_index}")],
            )

    def refresh_cost(replica_policy, updates):
        env, zone, secondary = build_replicated(replica_policy)
        churn(zone, updates, 1)
        start = env.now
        run(env, secondary.refresh_once())
        return env.now - start

    def preload_costs():
        """Full preload vs IXFR re-preload after a small churn."""
        env, zone, secondary = build_replicated(None)
        cache = ResolverCache(env, name="preload")
        preloader = BindResolver(
            secondary._resolver.host,
            secondary.transport,
            secondary.primary,
            cache=cache,
            replica_policy=ReplicaPolicy(),
            name="preloader",
        )
        start = env.now
        run(env, preloader.preload_cache("hns"))
        full_ms = env.now - start
        churn(zone, 5, 2)
        start = env.now
        run(env, preloader.preload_cache("hns"))
        incremental_ms = env.now - start
        return {"full_ms": full_ms, "incremental_ms_churn5": incremental_ms}

    def measure():
        table = {
            "ixfr": {
                str(level): refresh_cost(ReplicaPolicy(), level)
                for level in CHURN_LEVELS
            },
            "axfr": {
                str(level): refresh_cost(None, level)
                for level in CHURN_LEVELS
            },
            "preload": preload_costs(),
        }
        return table

    table = benchmark(measure)
    write_bench_results("replica_scheduling", "refresh_cost_vs_churn", table)
    print(f"\nsecondary refresh cost ({ZONE_RECORDS}-record zone):")
    print("  churn    IXFR (ms)    AXFR (ms)")
    for level in CHURN_LEVELS:
        print(
            f"  {level:>5} {table['ixfr'][str(level)]:>11.1f} "
            f"{table['axfr'][str(level)]:>12.1f}"
        )
    preload = table["preload"]
    print(
        f"  cache preload: full {preload['full_ms']:.1f} ms, "
        f"incremental (churn 5) {preload['incremental_ms_churn5']:.1f} ms"
    )
    ixfr = {int(k): v for k, v in table["ixfr"].items()}
    axfr = {int(k): v for k, v in table["axfr"].items()}
    # Acceptance: the incremental refresh is far cheaper than a full
    # transfer at low churn and scales with the number of changed
    # records, while AXFR cost is flat (it re-ships the whole zone).
    assert ixfr[1] < axfr[1] / 5.0
    assert ixfr[1] < ixfr[25] < ixfr[100]
    assert max(axfr.values()) < 1.5 * min(axfr.values())
    # The incremental cache re-preload beats the full preload the same
    # way (the paper's ~390 ms preload is the cost being avoided).
    assert preload["incremental_ms_churn5"] < preload["full_ms"] / 5.0
