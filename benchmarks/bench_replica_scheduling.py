"""Replica-aware meta reads: what scheduling, hedging, and IXFR buy.

The :class:`~repro.resolution.ReplicaPolicy` layer is a performance
extension beyond the paper's prototype, whose resolver walks a static
primary-then-secondaries list and whose replicas refresh by full zone
transfer.  Two benches measure it against that baseline:

1. tail latency with one degraded replica — closed-loop lookups against
   a three-replica set whose primary intermittently stalls past the
   transport timeout; hedged + adaptive selection vs the prototype's
   ordered failover (``ReplicaPolicy.disabled()``).  This one is a
   thin definition over the registered ``replica_scheduling`` ablation
   grid (:func:`repro.harness.grids.run_replica_scheduling`);
2. refresh cost vs churn — the simulated cost of a secondary refresh
   and of a cache re-preload as a function of how many records changed,
   incremental (IXFR) vs full (AXFR) transfer.

Set ``REPRO_BENCH_SMOKE=1`` for a reduced configuration (CI smoke).
"""

import os

import pytest

from repro.bind import BindResolver, BindServer, ResourceRecord, RRType, SecondaryBindServer, Zone
from repro.bind.cache import ResolverCache
from repro.harness import AblationStudy, DEFAULT_CALIBRATION
from repro.harness.ablation import BASELINE_KEY
from repro.harness.grids import REPLICA_GRID
from repro.net import DatagramTransport, Internetwork
from repro.resolution import ReplicaPolicy
from repro.sim import ConstantLatency, Environment

from conftest import run, write_bench_results

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
CAL = DEFAULT_CALIBRATION


def rec(name, text, ttl=3_600_000):
    return ResourceRecord.text_record(name, text, rtype=RRType.UNSPEC, ttl=ttl)


# ----------------------------------------------------------------------
# 1. Tail latency with one degraded replica
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="replica_scheduling")
def test_tail_latency_one_degraded_replica(benchmark):
    """The prototype's ordered failover pays the full transport timeout
    every time the (always-first) primary stalls; a hedged query
    re-issues after the latency quantile and takes the secondary's
    answer instead, so the degradation never reaches the tail.  One
    run per knob assignment of the registered ``replica_scheduling``
    grid (replica scheduling x primary health)."""
    study = AblationStudy(REPLICA_GRID, smoke=SMOKE)
    specs = study.expand()

    def measure():
        return study.execute(specs)

    results = benchmark(measure)
    failed = [r.spec.key for r in results if not r.ok]
    assert not failed, failed
    rows = {r.spec.key: r.metrics for r in results}
    write_bench_results(
        "replica_scheduling",
        "tail_latency_one_degraded_replica",
        {"runs": rows, "importance": study.importance(results)},
    )
    print(f"\nreplica-scheduling grid ({len(results)} runs):")
    for key, row in rows.items():
        print(
            f"  {key:<16} p50 {row['p50_ms']:6.1f} ms, "
            f"p99 {row['p99_ms']:6.1f} ms, max {row['max_ms']:6.1f} ms, "
            f"{row['hedges']:4.0f} hedges, {row['failovers']:3.0f} failovers"
        )
    hedged = rows[BASELINE_KEY]
    ordered = rows["replica=ordered"]
    healthy = rows["primary=healthy"]
    # Acceptance: hedging cuts the degraded-replica p99 by >=2x and
    # actually fired; the ordered baseline eats the transport timeout.
    assert hedged["hedges"] > 0
    assert hedged["p99_ms"] <= ordered["p99_ms"] / 2.0
    assert ordered["p99_ms"] >= 100.0
    # With a healthy primary there is nothing to hedge around: the
    # gain comes from masking the degradation, not a free speedup.
    assert healthy["p99_ms"] <= hedged["p99_ms"]


# ----------------------------------------------------------------------
# 2. Refresh cost vs churn: IXFR vs AXFR
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="replica_scheduling")
def test_refresh_cost_vs_churn(benchmark):
    """A full AXFR refresh costs the same whether one record changed or
    a hundred; an incremental refresh streams and installs only the
    journal delta, so its steady-state cost is proportional to churn."""
    ZONE_RECORDS = 120 if SMOKE else 300
    CHURN_LEVELS = (1, 5, 25, 100)

    def build_replicated(replica_policy):
        env = Environment(seed=62)
        net = Internetwork(env)
        seg = net.add_segment(
            latency=ConstantLatency(CAL.wire_base_ms, CAL.wire_per_byte_ms)
        )
        net.add_host("client", seg)
        primary_host = net.add_host("ns-primary", seg)
        secondary_host = net.add_host("ns-secondary", seg)
        zone = Zone("hns")
        for i in range(ZONE_RECORDS):
            zone.add(rec(f"x{i}.ctx.hns", f"ns=x{i}"))
        primary = BindServer(
            primary_host,
            zones=[zone],
            allow_dynamic_update=True,
            lookup_cost_ms=CAL.meta_bind_lookup_ms,
        )
        primary_ep = primary.listen()
        udp = DatagramTransport(net, retries=0, retry_timeout_ms=100)
        secondary = SecondaryBindServer(
            secondary_host,
            primary_ep,
            origins=["hns"],
            transport=udp,
            refresh_ms=60_000,
            lookup_cost_ms=CAL.meta_bind_lookup_ms,
            replica_policy=replica_policy,
        )
        secondary.listen()
        run(env, secondary.refresh_once())  # initial (full) sync
        return env, zone, secondary

    def churn(zone, updates, round_index):
        # Replace, not add: the zone size stays fixed while the journal
        # accumulates exactly ``updates`` deltas.
        for i in range(updates):
            zone.replace(
                f"x{i}.ctx.hns",
                RRType.UNSPEC,
                [rec(f"x{i}.ctx.hns", f"ns=x{i}-r{round_index}")],
            )

    def refresh_cost(replica_policy, updates):
        env, zone, secondary = build_replicated(replica_policy)
        churn(zone, updates, 1)
        start = env.now
        run(env, secondary.refresh_once())
        return env.now - start

    def preload_costs():
        """Full preload vs IXFR re-preload after a small churn."""
        env, zone, secondary = build_replicated(None)
        cache = ResolverCache(env, name="preload")
        preloader = BindResolver(
            secondary._resolver.host,
            secondary.transport,
            secondary.primary,
            cache=cache,
            replica_policy=ReplicaPolicy(),
            name="preloader",
        )
        start = env.now
        run(env, preloader.preload_cache("hns"))
        full_ms = env.now - start
        churn(zone, 5, 2)
        start = env.now
        run(env, preloader.preload_cache("hns"))
        incremental_ms = env.now - start
        return {"full_ms": full_ms, "incremental_ms_churn5": incremental_ms}

    def measure():
        table = {
            "ixfr": {
                str(level): refresh_cost(ReplicaPolicy(), level)
                for level in CHURN_LEVELS
            },
            "axfr": {
                str(level): refresh_cost(None, level)
                for level in CHURN_LEVELS
            },
            "preload": preload_costs(),
        }
        return table

    table = benchmark(measure)
    write_bench_results("replica_scheduling", "refresh_cost_vs_churn", table)
    print(f"\nsecondary refresh cost ({ZONE_RECORDS}-record zone):")
    print("  churn    IXFR (ms)    AXFR (ms)")
    for level in CHURN_LEVELS:
        print(
            f"  {level:>5} {table['ixfr'][str(level)]:>11.1f} "
            f"{table['axfr'][str(level)]:>12.1f}"
        )
    preload = table["preload"]
    print(
        f"  cache preload: full {preload['full_ms']:.1f} ms, "
        f"incremental (churn 5) {preload['incremental_ms_churn5']:.1f} ms"
    )
    ixfr = {int(k): v for k, v in table["ixfr"].items()}
    axfr = {int(k): v for k, v in table["axfr"].items()}
    # Acceptance: the incremental refresh is far cheaper than a full
    # transfer at low churn and scales with the number of changed
    # records, while AXFR cost is flat (it re-ships the whole zone).
    assert ixfr[1] < axfr[1] / 5.0
    assert ixfr[1] < ixfr[25] < ixfr[100]
    assert max(axfr.values()) < 1.5 * min(axfr.values())
    # The incremental cache re-preload beats the full preload the same
    # way (the paper's ~390 ms preload is the cost being avoided).
    assert preload["incremental_ms_churn5"] < preload["full_ms"] / 5.0
