"""Ablations of the design choices DESIGN.md calls out.

The paper motivates several decisions qualitatively; these benches put
numbers on them:

1. keeping FindNSM's mappings separate vs collapsing them (flexibility
   + storage vs latency — "we chose to keep these mappings separate");
2. TTL choice for the meta cache (staleness vs hit rate);
3. locality of reference (the caching scheme's enabling assumption);
4. scalability in the heterogeneity dimension (more system types must
   not slow lookups, and load stays distributed).
"""

import dataclasses

import pytest

from repro.core import Arrangement, HNSName
from repro.harness import DEFAULT_CALIBRATION
from repro.workloads import QueryWorkload, build_stack, build_testbed

from conftest import FIJI, run, timed


# ----------------------------------------------------------------------
# 1. Separate vs collapsed mappings
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="ablations")
def test_collapsed_mapping_ablation(benchmark):
    """Collapsing (context, query class) directly to an NSM binding
    saves cold latency but multiplies meta storage — the tradeoff the
    paper resolved with caching instead."""

    def measure():
        testbed = build_testbed(seed=91)
        hns = testbed.make_hns(testbed.client)
        env = testbed.env
        separate_cold = timed(env, hns.find_nsm(FIJI, "HRPCBinding"))
        separate_warm = timed(env, hns.find_nsm(FIJI, "HRPCBinding"))
        # Collapsed: one meta lookup carrying the full binding info plus
        # one host-address resolution.  Model its cold cost from the
        # measured per-mapping costs (1 of 5 meta lookups + mapping 6).
        per_meta_miss = (separate_cold - 2.0 - 27.7) / 5
        collapsed_cold = 2.0 + per_meta_miss + 27.7
        # Storage: separate keeps 1 record per context + per (ns, qc) +
        # per NSM; collapsed needs one *full* record per (context, qc).
        zone = testbed.meta_server.zones[0]
        separate_bytes = zone.wire_size()
        contexts, qcs, nsm_record_bytes = 3, 4, 120
        collapsed_bytes = contexts * qcs * nsm_record_bytes
        return separate_cold, separate_warm, collapsed_cold, separate_bytes, collapsed_bytes

    sep_cold, sep_warm, col_cold, sep_bytes, col_bytes = benchmark(measure)
    print(
        f"\nseparate mappings: cold {sep_cold:.0f} ms, warm {sep_warm:.1f} ms, "
        f"meta zone {sep_bytes} B"
    )
    print(
        f"collapsed mapping: cold ~{col_cold:.0f} ms, "
        f"meta zone ~{col_bytes} B (full binding per context x query class)"
    )
    # Collapsing would cut the cold path by >2x...
    assert col_cold < sep_cold / 2
    # ...but caching already gets far below even the collapsed cold cost,
    # which is why the paper "decided to adopt them for the flexibility".
    assert sep_warm < col_cold / 5


# ----------------------------------------------------------------------
# 2. TTL sweep
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="ablations")
def test_ttl_sweep(benchmark):
    """Short TTLs re-pay the miss cost on a refresh cadence; long TTLs
    amortize it (at the price of staleness the paper accepts)."""

    def measure():
        results = []
        for ttl in (200.0, 2_000.0, 3_600_000.0):
            cal = dataclasses.replace(DEFAULT_CALIBRATION, meta_ttl_ms=ttl)
            testbed = build_testbed(seed=92, calibration=cal)
            stack = build_stack(testbed, Arrangement.ALL_LOCAL)
            env = testbed.env
            total = 0.0
            for i in range(20):
                total += timed(
                    env, stack.importer.import_binding("DesiredService", FIJI)
                )
                env.run(until=env.now + 100)  # 100 ms between queries
            results.append((ttl, total / 20, stack.hns.metastore.cache.hit_ratio))
        return results

    results = benchmark(measure)
    print("\nmeta TTL sweep (20 queries, 100 ms apart):")
    for ttl, mean_ms, hit_ratio in results:
        print(f"  ttl={ttl:>10.0f} ms: mean import {mean_ms:6.1f} ms, "
              f"meta hit ratio {hit_ratio:.2f}")
    means = [m for _, m, _ in results]
    assert means[0] > means[1] > means[2]
    assert results[-1][2] > 0.9


# ----------------------------------------------------------------------
# 3. Locality of reference
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="ablations")
def test_locality_sweep(benchmark):
    """The specialized cache pays off exactly as locality rises."""

    def measure():
        population = [
            (HNSName("BIND-cs", f"{h}.cs.washington.edu"), "HostAddress", {})
            for h in ("fiji", "june", "ns0", "nsmhost", "hnshost", "agenthost",
                      "client", "dlion")
        ]
        results = []
        for s in (0.0, 1.0, 2.0):
            testbed = build_testbed(seed=93)
            env = testbed.env
            hostaddr = testbed.make_bind_hostaddr_nsm(testbed.client)
            workload = QueryWorkload(
                env, population, mean_interarrival_ms=10, zipf_s=s,
                stream=f"loc{s}",
            )
            events = workload.generate(60)
            total = 0.0
            for event in events:
                total += timed(env, hostaddr.query(event.hns_name))
            assert hostaddr.cache is not None
            results.append((s, total / len(events), hostaddr.cache.hit_ratio))
        return results

    results = benchmark(measure)
    print("\nlocality sweep (Zipf exponent -> mean lookup, hit ratio):")
    for s, mean_ms, hit_ratio in results:
        print(f"  s={s:3.1f}: mean {mean_ms:5.1f} ms, hit ratio {hit_ratio:.2f}")
    assert results[-1][1] < results[0][1]  # more locality, faster
    assert results[-1][2] > results[0][2]


# ----------------------------------------------------------------------
# 4. Scalability in the heterogeneity dimension
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="ablations")
def test_system_type_scalability(benchmark):
    """Adding system types leaves per-query cost flat and distributes
    query load onto the new subsystems' own servers."""

    def measure():
        from repro.bind import BindServer, ResourceRecord, Zone
        from repro.core.admin import HnsAdministrator

        results = []
        for extra_systems in (0, 4, 12):
            testbed = build_testbed(seed=94)
            env = testbed.env
            admin = HnsAdministrator(testbed.make_metastore(testbed.meta_host))

            def add_system(i):
                host = testbed.internet.add_host(f"sys{i}")
                zone = Zone(f"dept{i}.edu")
                zone.add(
                    ResourceRecord.a_record(f"box.dept{i}.edu", "128.95.1.250")
                )
                BindServer(host, zones=[zone], name=f"bind{i}").listen()
                yield from admin.register_name_service(
                    f"BIND-dept{i}", "bind", f"sys{i}.cs.washington.edu", 53
                )
                yield from admin.register_context(f"DEPT{i}", f"BIND-dept{i}")
                yield from admin.register_nsm(
                    nsm_name=f"HRPCBinding-BIND-dept{i}",
                    query_class="HRPCBinding",
                    name_service=f"BIND-dept{i}",
                    host_name="nsmhost.cs.washington.edu",
                    host_context="BIND-srv",
                    program=f"nsm.HRPCBinding-BIND-dept{i}",
                    suite="sunrpc",
                    port=9500 + i,
                )

            for i in range(extra_systems):
                run(env, add_system(i))
            # Measure the original system's cold FindNSM with the larger
            # federation in place.
            hns = testbed.make_hns(testbed.client)
            cold = timed(env, hns.find_nsm(FIJI, "HRPCBinding"))
            zone_bytes = testbed.meta_server.zones[0].wire_size()
            results.append((extra_systems, cold, zone_bytes))
        return results

    results = benchmark(measure)
    print("\nheterogeneity scalability (extra system types):")
    for n, cold, zone_bytes in results:
        print(f"  +{n:>2} systems: cold FindNSM {cold:6.1f} ms, meta zone {zone_bytes} B")
    colds = [c for _, c, _ in results]
    # Per-query cost independent of federation size (within 2%)...
    assert max(colds) / min(colds) < 1.02
    # ...while meta state grows only linearly and modestly.
    assert results[-1][2] < results[0][2] * 4


# ----------------------------------------------------------------------
# 5. Broadcast-based location vs context-based lookup
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="ablations")
def test_broadcast_vs_context_location(benchmark):
    """'The alternative of locating the appropriate local name server,
    either through some multicast technique ... is either too
    inefficient in our environment ...' — measure the aggregate cost of
    broadcast location as the segment grows."""

    def measure():
        from repro.broadcast import BroadcastLocator, NameOwnerService
        from repro.net import DatagramTransport, Internetwork
        from repro.sim import ConstantLatency, Environment

        results = []
        for n_hosts in (8, 32, 96):
            env = Environment(seed=96)
            net = Internetwork(env)
            seg = net.add_segment(latency=ConstantLatency(1.0, 0.0008))
            hosts = [net.add_host(f"h{i}", seg) for i in range(n_hosts)]
            owners = [NameOwnerService(h) for h in hosts[1:]]
            owners[-1].own("theservice", port=1)
            udp = DatagramTransport(net)
            locator = BroadcastLocator(hosts[0], udp, wait_ms=80)

            def one_locate():
                answer = yield from locator.locate("theservice")
                return answer

            start = env.now
            env.run(until=env.process(one_locate()))
            latency = env.now - start
            env.run()  # drain stragglers
            total_examinations = sum(o.examined for o in owners)
            # Aggregate CPU burned across the segment for ONE query.
            aggregate_cpu = total_examinations * 1.5 + 4.0
            results.append((n_hosts, latency, aggregate_cpu))
        return results

    results = benchmark(measure)
    print("\nbroadcast location vs segment size (one query):")
    for n, latency, aggregate in results:
        print(
            f"  {n:>3} hosts: client latency {latency:5.1f} ms, "
            f"aggregate segment CPU {aggregate:7.1f} ms"
        )
    # The client barely notices, but the segment-wide cost grows
    # linearly with host count — vs the HNS's fixed two lookups.
    aggregates = [a for _, _, a in results]
    assert aggregates[-1] > 10 * aggregates[0]
    hns_context_cost = 2 * 0.83  # two cached mappings, one process
    assert aggregates[0] > hns_context_cost


# ----------------------------------------------------------------------
# 6. Cache capacity (LRU) sweep
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="ablations")
def test_cache_capacity_sweep(benchmark):
    """An undersized cache thrashes under a Zipf workload; capacity at
    the working-set size restores the hit ratio."""

    def measure():
        from repro.bind import BindResolver, ResolverCache

        results = []
        population = 12
        for capacity in (2, 6, None):
            testbed = build_testbed(seed=97)
            env = testbed.env
            cache = ResolverCache(
                env, capacity=capacity, calibration=testbed.calibration
            )
            resolver = BindResolver(
                testbed.client,
                testbed.udp,
                testbed.public_endpoint,
                cache=cache,
                calibration=testbed.calibration,
            )
            hosts = [
                "fiji", "june", "ns0", "nsmhost", "hnshost", "agenthost",
                "client", "dlion",
            ]
            workload = QueryWorkload(
                env,
                [
                    (HNSName("BIND-cs", f"{h}.cs.washington.edu"), "HostAddress", {})
                    for h in hosts
                ],
                zipf_s=0.8,
                stream=f"cap{capacity}",
            )
            for event in workload.generate(80):
                timed(env, resolver.lookup(str(event.hns_name).split("::")[1]))
            results.append((capacity, cache.hit_ratio, cache.evictions))
        return results

    results = benchmark(measure)
    print("\ncache capacity sweep (80 Zipf lookups over 8 names):")
    for capacity, hit_ratio, evictions in results:
        label = "unbounded" if capacity is None else str(capacity)
        print(f"  capacity {label:>9}: hit ratio {hit_ratio:.2f}, evictions {evictions}")
    ratios = [r for _, r, _ in results]
    assert ratios[0] < ratios[1] <= ratios[2]
    assert results[0][2] > 0  # the small cache actually evicted


# ----------------------------------------------------------------------
# 7. Negative caching
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="ablations")
def test_negative_caching_ablation(benchmark):
    """Repeated lookups of absent names: negative caching turns 27 ms
    round trips into sub-millisecond probes."""

    def measure():
        from repro.bind import BindResolver, NameNotFound, ResolverCache

        out = {}
        for negative_ttl in (0.0, 60_000.0):
            testbed = build_testbed(seed=98)
            env = testbed.env
            resolver = BindResolver(
                testbed.client,
                testbed.udp,
                testbed.public_endpoint,
                cache=ResolverCache(env, calibration=testbed.calibration),
                negative_ttl_ms=negative_ttl,
                calibration=testbed.calibration,
            )

            def miss_twenty():
                for _ in range(20):
                    try:
                        yield from resolver.lookup("ghost.cs.washington.edu")
                    except NameNotFound:
                        pass
                return env.now

            start = env.now
            env.run(until=env.process(miss_twenty()))
            out[negative_ttl] = (env.now - start) / 20
        return out

    means = benchmark(measure)
    print(
        f"\nmean absent-name lookup: {means[0.0]:.1f} ms uncached vs "
        f"{means[60_000.0]:.2f} ms with negative caching"
    )
    assert means[60_000.0] < means[0.0] / 5


# ----------------------------------------------------------------------
# 8. Why the Clearinghouse is slow (the paper's footnote 5)
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="ablations")
def test_clearinghouse_cost_decomposition(benchmark):
    """'Clearinghouse accesses are slow because each access is
    authenticated, and virtually all data is retrieved from disk.  In
    contrast, BIND does no authentication and keeps all its information
    in primary memory.'  Turn those two properties off one at a time."""

    def measure():
        import dataclasses as dc

        from repro.clearinghouse import ClearinghouseClient
        from repro.workloads.scenarios import CREDENTIALS

        results = {}
        variants = {
            "as measured (auth + disk)": {},
            "no authentication": {"ch_auth_cpu_ms": 0.0, "ch_auth_disk_ms": 0.0},
            "data in primary memory": {"ch_data_disk_ms": 0.0},
            "neither (BIND-like)": {
                "ch_auth_cpu_ms": 0.0,
                "ch_auth_disk_ms": 0.0,
                "ch_data_disk_ms": 0.0,
                "ch_process_ms": 20.0,
            },
        }
        for label, overrides in variants.items():
            cal = dc.replace(DEFAULT_CALIBRATION, **overrides)
            testbed = build_testbed(seed=99, calibration=cal)
            env = testbed.env
            client = ClearinghouseClient(
                testbed.client, testbed.tcp, testbed.ch_endpoint, CREDENTIALS
            )
            results[label] = timed(env, client.lookup_address("dlion:hcs:uw"))
        return results

    results = benchmark(measure)
    print("\nClearinghouse lookup cost decomposition:")
    for label, ms in results.items():
        print(f"  {label:<28} {ms:6.1f} ms")
    assert results["as measured (auth + disk)"] == pytest.approx(156, rel=0.02)
    assert results["no authentication"] < 100
    assert results["neither (BIND-like)"] < 35  # approaches BIND's 27


# ----------------------------------------------------------------------
# 9. Cache format under a workload
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="ablations")
def test_cache_format_under_workload(benchmark):
    """Table 3.2's lesson end-to-end: with a hot cache, a marshalled
    meta cache makes every import pay demarshalling again."""

    def measure():
        from repro.bind.cache import CacheFormat

        out = {}
        for fmt in (CacheFormat.DEMARSHALLED, CacheFormat.MARSHALLED):
            testbed = build_testbed(seed=95)
            env = testbed.env
            from repro.core.hns import HNS
            from repro.core.metastore import MetaStore

            metastore = MetaStore(
                testbed.client,
                testbed.udp,
                testbed.meta_endpoint,
                calibration=testbed.calibration,
                cache_format=fmt,
            )
            hns = HNS(metastore, calibration=testbed.calibration)
            hns.link_host_address_nsm(
                "BIND-cs", testbed.make_bind_hostaddr_nsm(testbed.client)
            )
            hns.link_host_address_nsm(
                "CH-hcs", testbed.make_ch_hostaddr_nsm(testbed.client)
            )
            timed(env, hns.find_nsm(FIJI, "HRPCBinding"))  # warm
            warm = sum(
                timed(env, hns.find_nsm(FIJI, "HRPCBinding")) for _ in range(10)
            ) / 10
            out[fmt.value] = warm
        return out

    warm = benchmark(measure)
    print(
        f"\nwarm FindNSM: demarshalled cache {warm['demarshalled']:.1f} ms, "
        f"marshalled cache {warm['marshalled']:.1f} ms"
    )
    assert warm["marshalled"] > 6 * warm["demarshalled"]
