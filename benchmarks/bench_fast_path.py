"""The FindNSM fast path: what each mechanism buys.

The :class:`~repro.resolution.FastPathPolicy` layer (single-flight
coalescing, refresh-ahead renewal, batched meta lookups) is a
performance extension beyond the paper's prototype; these benches
measure it with each mechanism ablated independently:

1. cold round trips — requests per cold FindNSM with batched meta
   lookups (one chained batch + one addr lookup = 2) vs the paper's
   six sequential mappings;
2. a TTL-expiry thundering herd — concurrent clients re-resolving the
   same name the instant its meta entries expire, with and without
   coalescing;
3. a Zipf workload — p50/p99 FindNSM latency and meta-server queries
   per resolution under concurrent closed-loop clients, comparing each
   ablation against an all-hit steady state.

Set ``REPRO_BENCH_SMOKE=1`` for a reduced configuration (CI smoke).
"""

import dataclasses
import os

import pytest

from repro.core import HNSName
from repro.harness import DEFAULT_CALIBRATION
from repro.resolution import FastPathPolicy
from repro.workloads import build_testbed
from repro.workloads.scenarios import BIND_NS
from repro.core.admin import HnsAdministrator

from conftest import FIJI, run, write_bench_results

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: The ablation grid: every mechanism off by itself, plus the endpoints.
CONFIGS = (
    ("full", FastPathPolicy()),
    ("no coalescing", FastPathPolicy(coalesce=False)),
    ("no refresh", FastPathPolicy(refresh_ahead_fraction=0.0)),
    ("no batching", FastPathPolicy(batch_meta_lookups=False)),
    ("disabled", FastPathPolicy.disabled()),
)


def percentile(samples, p):
    """Linear-interpolated percentile of a non-empty sample list."""
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    k = (len(ordered) - 1) * (p / 100.0)
    lo = int(k)
    hi = min(lo + 1, len(ordered) - 1)
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (k - lo)


def idle(env, ms):
    """Advance simulated time by ``ms`` with nothing else scheduled."""

    def sleeper():
        yield env.timeout(ms)

    run(env, sleeper())


def server_requests(env):
    """Datagrams seen by both name servers (a batch counts once)."""
    return (
        env.stats.counter("bind.meta-bind.requests").value
        + env.stats.counter("bind.public-bind.requests").value
    )


# ----------------------------------------------------------------------
# 1. Cold round trips
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="fast_path")
def test_cold_round_trips(benchmark):
    """A cold FindNSM is six request/response exchanges in the paper's
    prototype (five meta lookups plus the native HostAddress lookup);
    with batched meta lookups it is two (one chained batch covering
    mappings 1-3, one meta addr lookup covering 4-6)."""

    def measure():
        table = {}
        for label, fast_path in CONFIGS:
            testbed = build_testbed(seed=31)
            env = testbed.env
            hns = testbed.make_hns(testbed.client, fast_path=fast_path)
            before = server_requests(env)
            binding = run(env, hns.find_nsm(FIJI, "HRPCBinding"))
            table[label] = {
                "requests": server_requests(env) - before,
                "meta_queries": env.stats.counter(
                    "bind.meta-bind.queries"
                ).value,
                "program": binding.program,
            }
        return table

    table = benchmark(measure)
    write_bench_results("fast_path", "cold_round_trips", table)
    print("\nrequests per cold FindNSM:")
    for label, row in table.items():
        print(
            f"  {label:<15} {row['requests']} requests "
            f"({row['meta_queries']} meta DB queries) -> {row['program']}"
        )
    # Acceptance: <=2 round trips batched, exactly the paper's 6 without,
    # and both produce the same binding.
    for label, row in table.items():
        batched = "batching" not in label and label != "disabled"
        if batched:
            assert row["requests"] <= 2, (label, row)
        assert row["program"] == table["disabled"]["program"]
    assert table["disabled"]["requests"] == 6
    assert table["no batching"]["requests"] == 6


# ----------------------------------------------------------------------
# 2. TTL-expiry thundering herd
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="fast_path")
def test_ttl_expiry_herd(benchmark):
    """When a popular name's meta entries expire, every concurrent
    client misses at once; single-flight coalescing sends one renewal
    per mapping and parks the rest on it."""
    CLIENTS = 8 if SMOKE else 16
    CALIBRATION = dataclasses.replace(DEFAULT_CALIBRATION, meta_ttl_ms=5_000)
    HERD_CONFIGS = (
        (
            "coalescing",
            FastPathPolicy(refresh_ahead_fraction=0.0, batch_meta_lookups=False),
        ),
        ("disabled", FastPathPolicy.disabled()),
    )

    def measure():
        table = {}
        for label, fast_path in HERD_CONFIGS:
            testbed = build_testbed(seed=32, calibration=CALIBRATION)
            env = testbed.env
            hns = testbed.make_hns(testbed.client, fast_path=fast_path)
            run(env, hns.find_nsm(FIJI, "HRPCBinding"))  # warm everything
            idle(env, 6_000)  # past every meta TTL
            before = server_requests(env)
            done = []
            latencies = []

            def one_find():
                start = env.now
                yield from hns.find_nsm(FIJI, "HRPCBinding")
                latencies.append(env.now - start)
                done.append(1)

            for _ in range(CLIENTS):
                env.process(one_find())
            idle(env, 30_000)
            assert len(done) == CLIENTS
            table[label] = {
                "requests": server_requests(env) - before,
                "coalesced": env.stats.counter(
                    "cache.hns-meta@client.coalesced"
                ).value,
                "p50_ms": percentile(latencies, 50),
                "p99_ms": percentile(latencies, 99),
            }
        return table

    table = benchmark(measure)
    write_bench_results("fast_path", "ttl_expiry_herd", table)
    print(f"\nTTL-expiry herd ({CLIENTS} concurrent FindNSMs):")
    for label, row in table.items():
        print(
            f"  {label:<12} {row['requests']:3d} requests, "
            f"{row['coalesced']:3d} coalesced, "
            f"p50 {row['p50_ms']:7.1f} ms, p99 {row['p99_ms']:7.1f} ms"
        )
    herd = table["coalescing"]
    baseline = table["disabled"]
    # Acceptance: coalescing cuts duplicate renewals by >=5x — and at
    # minimum saves *something*, which is what the CI smoke run checks.
    assert herd["requests"] < baseline["requests"]
    assert baseline["requests"] >= 5 * herd["requests"]
    assert herd["coalesced"] > 0


# ----------------------------------------------------------------------
# 3. Zipf workload: latency distribution per ablation
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="fast_path")
def test_zipf_latency_distribution(benchmark):
    """Closed-loop clients resolving Zipf-distributed contexts against
    a short meta TTL.  Refresh-ahead renews popular entries before they
    expire, so the latency tail stays at cache-hit cost instead of
    absorbing periodic re-resolutions."""
    CLIENTS = 8 if SMOKE else 16
    CONTEXTS = 16 if SMOKE else 32
    DURATION_MS = 20_000 if SMOKE else 90_000
    THINK_MEAN_MS = 150.0
    ZIPF_S = 0.9
    # A third of the run: every context's entries expire a few times,
    # and even tail contexts see a handful of hits per refresh window.
    TTL_MS = 7_000.0 if SMOKE else 30_000.0

    def run_workload(fast_path, ttl_ms):
        calibration = dataclasses.replace(
            DEFAULT_CALIBRATION, meta_ttl_ms=ttl_ms
        )
        testbed = build_testbed(seed=33, calibration=calibration)
        env = testbed.env
        hns = testbed.make_hns(testbed.client, fast_path=fast_path)
        admin = HnsAdministrator(testbed.make_metastore(testbed.meta_host))

        def register_contexts():
            for i in range(CONTEXTS):
                yield from admin.register_context(f"zipf-ctx-{i}", BIND_NS)

        run(env, register_contexts())
        names = [
            HNSName(f"zipf-ctx-{i}", "fiji.cs.washington.edu")
            for i in range(CONTEXTS)
        ]
        weights = [1.0 / (i + 1) ** ZIPF_S for i in range(CONTEXTS)]
        # Warm every context once so the measurement starts from the
        # steady state rather than the initial cold ramp.
        def warm():
            for name in names:
                yield from hns.find_nsm(name, "HRPCBinding")

        run(env, warm())
        start_queries = env.stats.counter("bind.meta-bind.queries").value
        rng = env.rng.stream("bench.zipf")
        latencies = []
        deadline = env.now + DURATION_MS

        def client_loop():
            while env.now < deadline:
                name = rng.choices(names, weights)[0]
                t0 = env.now
                yield from hns.find_nsm(name, "HRPCBinding")
                latencies.append(env.now - t0)
                yield env.timeout(rng.expovariate(1.0 / THINK_MEAN_MS))

        for _ in range(CLIENTS):
            env.process(client_loop())
        idle(env, DURATION_MS + 30_000)
        queries = (
            env.stats.counter("bind.meta-bind.queries").value - start_queries
        )
        return {
            "finds": len(latencies),
            "p50_ms": percentile(latencies, 50),
            "p99_ms": percentile(latencies, 99),
            "meta_queries_per_find": queries / max(1, len(latencies)),
        }

    def measure():
        table = {}
        for label, fast_path in CONFIGS:
            table[label] = run_workload(fast_path, TTL_MS)
        # The steady-state reference: same load, but TTLs so long that
        # every lookup after warm-up is a cache hit (u32 wire field, so
        # "long" tops out around 49 days).
        table["all-hit reference"] = run_workload(
            FastPathPolicy.disabled(), 3_000_000_000
        )
        return table

    table = benchmark(measure)
    write_bench_results("fast_path", "zipf_latency_distribution", table)
    print(
        f"\nZipf workload ({CLIENTS} clients, {CONTEXTS} contexts, "
        f"meta TTL {TTL_MS / 1000:.0f} s):"
    )
    for label, row in table.items():
        print(
            f"  {label:<18} {row['finds']:5d} finds, "
            f"p50 {row['p50_ms']:6.1f} ms, p99 {row['p99_ms']:7.1f} ms, "
            f"{row['meta_queries_per_find']:.2f} meta queries/find"
        )
    reference = table["all-hit reference"]
    # Acceptance (full config only — the reduced smoke run lacks the
    # sample count for stable tail percentiles): with refresh-ahead the
    # tail stays within 2x of the steady-state cache-hit tail; without
    # it, expiry re-resolutions surface in p99.
    if not SMOKE:
        assert table["full"]["p99_ms"] <= 2.0 * reference["p99_ms"]
        assert table["no refresh"]["p99_ms"] > table["full"]["p99_ms"]
    # The fast path also does strictly less meta-server work per find
    # than the sequential prototype under the same load.
    assert (
        table["full"]["meta_queries_per_find"]
        < table["disabled"]["meta_queries_per_find"]
    )
