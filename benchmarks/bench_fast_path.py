"""The FindNSM fast path: what each mechanism buys.

The :class:`~repro.resolution.FastPathPolicy` layer (single-flight
coalescing, refresh-ahead renewal, batched meta lookups) is a
performance extension beyond the paper's prototype; these benches
measure it with each mechanism ablated independently:

1. cold round trips — requests per cold FindNSM with batched meta
   lookups (one chained batch + one addr lookup = 2) vs the paper's
   six sequential mappings;
2. a TTL-expiry thundering herd — concurrent clients re-resolving the
   same name the instant its meta entries expire, with and without
   coalescing;
3. a Zipf workload — p50/p99 FindNSM latency and meta-server queries
   per resolution under concurrent closed-loop clients, comparing each
   ablation against an all-hit steady state.  This one is a thin
   definition over the registered ``fast_path`` ablation grid: the
   workload body lives in :func:`repro.harness.grids.run_fast_path`
   and the knob registry in
   :data:`repro.harness.grids.FAST_PATH_GRID`.

Set ``REPRO_BENCH_SMOKE=1`` for a reduced configuration (CI smoke).
"""

import dataclasses
import os

import pytest

from repro.harness import AblationStudy, DEFAULT_CALIBRATION
from repro.harness.ablation import BASELINE_KEY
from repro.harness.grids import FAST_PATH_GRID
from repro.resolution import FastPathPolicy
from repro.workloads import build_testbed

from conftest import FIJI, run, write_bench_results

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: The ablation grid: every mechanism off by itself, plus the endpoints.
CONFIGS = (
    ("full", FastPathPolicy()),
    ("no coalescing", FastPathPolicy(coalesce=False)),
    ("no refresh", FastPathPolicy(refresh_ahead_fraction=0.0)),
    ("no batching", FastPathPolicy(batch_meta_lookups=False)),
    ("disabled", FastPathPolicy.disabled()),
)


def percentile(samples, p):
    """Linear-interpolated percentile of a non-empty sample list."""
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    k = (len(ordered) - 1) * (p / 100.0)
    lo = int(k)
    hi = min(lo + 1, len(ordered) - 1)
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (k - lo)


def idle(env, ms):
    """Advance simulated time by ``ms`` with nothing else scheduled."""

    def sleeper():
        yield env.timeout(ms)

    run(env, sleeper())


def server_requests(env):
    """Datagrams seen by both name servers (a batch counts once)."""
    return (
        env.stats.counter("bind.meta-bind.requests").value
        + env.stats.counter("bind.public-bind.requests").value
    )


# ----------------------------------------------------------------------
# 1. Cold round trips
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="fast_path")
def test_cold_round_trips(benchmark):
    """A cold FindNSM is six request/response exchanges in the paper's
    prototype (five meta lookups plus the native HostAddress lookup);
    with batched meta lookups it is two (one chained batch covering
    mappings 1-3, one meta addr lookup covering 4-6)."""

    def measure():
        table = {}
        for label, fast_path in CONFIGS:
            testbed = build_testbed(seed=31)
            env = testbed.env
            hns = testbed.make_hns(testbed.client, fast_path=fast_path)
            before = server_requests(env)
            binding = run(env, hns.find_nsm(FIJI, "HRPCBinding"))
            table[label] = {
                "requests": server_requests(env) - before,
                "meta_queries": env.stats.counter(
                    "bind.meta-bind.queries"
                ).value,
                "program": binding.program,
            }
        return table

    table = benchmark(measure)
    write_bench_results("fast_path", "cold_round_trips", table)
    print("\nrequests per cold FindNSM:")
    for label, row in table.items():
        print(
            f"  {label:<15} {row['requests']} requests "
            f"({row['meta_queries']} meta DB queries) -> {row['program']}"
        )
    # Acceptance: <=2 round trips batched, exactly the paper's 6 without,
    # and both produce the same binding.
    for label, row in table.items():
        batched = "batching" not in label and label != "disabled"
        if batched:
            assert row["requests"] <= 2, (label, row)
        assert row["program"] == table["disabled"]["program"]
    assert table["disabled"]["requests"] == 6
    assert table["no batching"]["requests"] == 6


# ----------------------------------------------------------------------
# 2. TTL-expiry thundering herd
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="fast_path")
def test_ttl_expiry_herd(benchmark):
    """When a popular name's meta entries expire, every concurrent
    client misses at once; single-flight coalescing sends one renewal
    per mapping and parks the rest on it."""
    CLIENTS = 8 if SMOKE else 16
    CALIBRATION = dataclasses.replace(DEFAULT_CALIBRATION, meta_ttl_ms=5_000)
    HERD_CONFIGS = (
        (
            "coalescing",
            FastPathPolicy(refresh_ahead_fraction=0.0, batch_meta_lookups=False),
        ),
        ("disabled", FastPathPolicy.disabled()),
    )

    def measure():
        table = {}
        for label, fast_path in HERD_CONFIGS:
            testbed = build_testbed(seed=32, calibration=CALIBRATION)
            env = testbed.env
            hns = testbed.make_hns(testbed.client, fast_path=fast_path)
            run(env, hns.find_nsm(FIJI, "HRPCBinding"))  # warm everything
            idle(env, 6_000)  # past every meta TTL
            before = server_requests(env)
            done = []
            latencies = []

            def one_find():
                start = env.now
                yield from hns.find_nsm(FIJI, "HRPCBinding")
                latencies.append(env.now - start)
                done.append(1)

            for _ in range(CLIENTS):
                env.process(one_find())
            idle(env, 30_000)
            assert len(done) == CLIENTS
            table[label] = {
                "requests": server_requests(env) - before,
                "coalesced": env.stats.counter(
                    "cache.hns-meta@client.coalesced"
                ).value,
                "p50_ms": percentile(latencies, 50),
                "p99_ms": percentile(latencies, 99),
            }
        return table

    table = benchmark(measure)
    write_bench_results("fast_path", "ttl_expiry_herd", table)
    print(f"\nTTL-expiry herd ({CLIENTS} concurrent FindNSMs):")
    for label, row in table.items():
        print(
            f"  {label:<12} {row['requests']:3d} requests, "
            f"{row['coalesced']:3d} coalesced, "
            f"p50 {row['p50_ms']:7.1f} ms, p99 {row['p99_ms']:7.1f} ms"
        )
    herd = table["coalescing"]
    baseline = table["disabled"]
    # Acceptance: coalescing cuts duplicate renewals by >=5x — and at
    # minimum saves *something*, which is what the CI smoke run checks.
    assert herd["requests"] < baseline["requests"]
    assert baseline["requests"] >= 5 * herd["requests"]
    assert herd["coalesced"] > 0


# ----------------------------------------------------------------------
# 3. Zipf workload: the registered ablation grid
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="fast_path")
def test_zipf_latency_distribution(benchmark):
    """Closed-loop clients resolving Zipf-distributed contexts against
    a short meta TTL, one run per knob assignment of the registered
    ``fast_path`` grid.  Refresh-ahead renews popular entries before
    they expire, so the latency tail stays at cache-hit cost instead of
    absorbing periodic re-resolutions."""
    study = AblationStudy(FAST_PATH_GRID, smoke=SMOKE)
    specs = study.expand()

    def measure():
        return study.execute(specs)

    results = benchmark(measure)
    failed = [r.spec.key for r in results if not r.ok]
    assert not failed, failed
    rows = {r.spec.key: r.metrics for r in results}
    write_bench_results(
        "fast_path",
        "zipf_latency_distribution",
        {"runs": rows, "importance": study.importance(results)},
    )
    print(f"\nZipf fast-path grid ({len(results)} runs):")
    for key, row in rows.items():
        print(
            f"  {key:<24} {row['finds']:6.0f} finds, "
            f"p50 {row['p50_ms']:6.1f} ms, p99 {row['p99_ms']:7.1f} ms, "
            f"{row['meta_queries_per_find']:.2f} meta queries/find, "
            f"avail {row['availability']:.3f}"
        )
    full = rows[BASELINE_KEY]
    reference = rows["reference"]
    # Acceptance (full config only — the reduced smoke run lacks the
    # sample count for stable tail percentiles): with refresh-ahead the
    # tail stays within 2x of the steady-state cache-hit tail; without
    # it, expiry re-resolutions surface in p99.
    if not SMOKE:
        assert full["p99_ms"] <= 2.0 * reference["p99_ms"]
        assert rows["fast_path=no_refresh"]["p99_ms"] > full["p99_ms"]
    # The fast path also does strictly less meta-server work per find
    # than the sequential prototype under the same load.
    assert (
        full["meta_queries_per_find"]
        < rows["fast_path=disabled"]["meta_queries_per_find"]
    )
