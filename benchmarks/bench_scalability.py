"""Scalability: direct access distributes load; reregistration centralizes it.

"the system is scalable, since the processing load is naturally
distributed among the subsystems" — and conversely, a reregistration
design funnels every lookup through the one global store, whose CPU
becomes the bottleneck.  These benches run concurrent clients against
both designs and measure the makespan.
"""

import pytest

from repro.bind import BindResolver, BindServer, ResourceRecord, Zone
from repro.net import DatagramTransport, Internetwork
from repro.sim import ConstantLatency, Environment
from repro.harness.calibration import DEFAULT_CALIBRATION

CAL = DEFAULT_CALIBRATION


def _build(n_subsystems, clients_per_subsystem, centralized):
    """Concurrent lookups; returns the makespan in simulated ms.

    ``centralized=False``: each subsystem keeps its own name server and
    its clients query it (the direct-access shape).
    ``centralized=True``: all data is reregistered into one global
    server that every client queries (the rejected design).
    """
    env = Environment(seed=101)
    net = Internetwork(env)
    seg = net.add_segment(latency=ConstantLatency(CAL.wire_base_ms, CAL.wire_per_byte_ms))
    udp = DatagramTransport(net, retry_timeout_ms=100_000)

    def make_zone(i):
        zone = Zone(f"dept{i}.edu")
        zone.add(ResourceRecord.a_record(f"host.dept{i}.edu", f"10.{i}.0.1"))
        return zone

    if centralized:
        global_host = net.add_host("global-ns", seg)
        server = BindServer(
            global_host, zones=[make_zone(i) for i in range(n_subsystems)],
            name="global",
        )
        endpoints = [server.listen()] * n_subsystems
    else:
        endpoints = []
        for i in range(n_subsystems):
            host = net.add_host(f"ns{i}", seg)
            server = BindServer(host, zones=[make_zone(i)], name=f"dept{i}")
            endpoints.append(server.listen())

    done = []

    def client(i, k):
        resolver = BindResolver(
            net.add_host(f"c{i}-{k}", seg), udp, endpoints[i],
            name=f"r{i}-{k}",
        )
        address = yield from resolver.lookup_address(f"host.dept{i}.edu")
        assert address == f"10.{i}.0.1"
        done.append(env.now)

    for i in range(n_subsystems):
        for k in range(clients_per_subsystem):
            env.process(client(i, k))
    env.run()
    assert len(done) == n_subsystems * clients_per_subsystem
    return max(done)


@pytest.mark.benchmark(group="scalability")
def test_distributed_vs_centralized_load(benchmark):
    def measure():
        distributed = _build(8, 4, centralized=False)
        centralized = _build(8, 4, centralized=True)
        return distributed, centralized

    distributed, centralized = benchmark(measure)
    print(
        f"\n32 concurrent lookups across 8 subsystems: "
        f"distributed makespan {distributed:.0f} ms, "
        f"centralized {centralized:.0f} ms "
        f"({centralized / distributed:.1f}x worse)"
    )
    # The central store serialises everyone on one CPU.
    assert centralized > 5 * distributed


@pytest.mark.benchmark(group="scalability")
def test_makespan_growth_with_system_size(benchmark):
    """Adding subsystems (with their clients) barely moves the
    direct-access makespan but grows the centralized one linearly."""

    def measure():
        rows = []
        for n in (2, 8, 16):
            rows.append(
                (
                    n,
                    _build(n, 2, centralized=False),
                    _build(n, 2, centralized=True),
                )
            )
        return rows

    rows = benchmark(measure)
    print("\nsubsystems -> makespan (2 clients each):")
    for n, distributed, centralized in rows:
        print(
            f"  {n:>2} subsystems: distributed {distributed:7.0f} ms, "
            f"centralized {centralized:7.0f} ms"
        )
    d = [row[1] for row in rows]
    c = [row[2] for row in rows]
    assert d[-1] < 2 * d[0]       # direct access: ~flat
    assert c[-1] > 5 * c[0]       # centralized: grows with the system
