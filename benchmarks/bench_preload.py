"""Section 3: cache preloading via the BIND zone-transfer mechanism.

"The actual preload cost was measured to be about 390 msec.  Since the
cost of preloading plus a cache hit falls between one and two cache
miss times, preloading seems to be effective in situations where two or
more calls to the HNS for different context/query classes will be
made."
"""

import pytest

from repro.core import HNSName
from repro.core.model import preload_breakeven_calls
from repro.harness import ComparisonTable
from repro.workloads import build_testbed

from conftest import timed


def measure_preload(seed=61):
    testbed = build_testbed(seed=seed)
    hns = testbed.make_hns(testbed.client)
    env = testbed.env
    preload_ms = timed(env, hns.preload())
    # First FindNSM after preload: all six mappings hit.
    first_after = timed(
        env,
        hns.find_nsm(HNSName("BIND-cs", "fiji.cs.washington.edu"), "HRPCBinding"),
    )
    zone = testbed.meta_server.zones[0]
    return preload_ms, first_after, zone.wire_size()


def measure_cold_miss(seed=62):
    testbed = build_testbed(seed=seed)
    hns = testbed.make_hns(testbed.client)
    return timed(
        testbed.env,
        hns.find_nsm(HNSName("BIND-cs", "fiji.cs.washington.edu"), "HRPCBinding"),
    )


def measure_sweep(max_queries=5, seed=63):
    """Total cost of k distinct FindNSMs, with and without preloading."""
    # Distinct context/query-class pairs, alternating name systems so
    # consecutive cold queries share as little meta state as possible
    # (the regime the paper's break-even statement describes).
    queries = [
        (HNSName("BIND-cs", "fiji.cs.washington.edu"), "HRPCBinding"),
        (HNSName("CH-hcs", "dlion:hcs:uw"), "HRPCBinding"),
        (HNSName("BIND-cs", "schwartz.cs.washington.edu"), "MailboxLocation"),
        (HNSName("CH-hcs", "levy:hcs:uw"), "MailboxLocation"),
        (HNSName("BIND-cs", "src.projects.cs.washington.edu"), "FileService"),
    ][:max_queries]
    results = []
    for k in range(1, len(queries) + 1):
        # Without preload.
        testbed = build_testbed(seed=seed)
        hns = testbed.make_hns(testbed.client)
        cold_total = sum(
            timed(testbed.env, hns.find_nsm(name, qc)) for name, qc in queries[:k]
        )
        # With preload.
        testbed2 = build_testbed(seed=seed)
        hns2 = testbed2.make_hns(testbed2.client)
        preload_ms = timed(testbed2.env, hns2.preload())
        warm_total = preload_ms + sum(
            timed(testbed2.env, hns2.find_nsm(name, qc)) for name, qc in queries[:k]
        )
        results.append((k, cold_total, warm_total))
    return results


@pytest.mark.benchmark(group="preload")
def test_preload_cost_and_size(benchmark):
    preload_ms, first_after, zone_bytes = benchmark(measure_preload)
    table = ComparisonTable("Cache preloading")
    table.add("preload cost (msec)", 390.0, preload_ms)
    table.add("meta information size (bytes)", 2048, zone_bytes)
    print()
    print(table.render())
    print(f"first FindNSM after preload: {first_after:.1f} ms (all hits)")
    assert preload_ms == pytest.approx(390.0, rel=0.05)
    assert 1000 < zone_bytes < 4000  # "about 2KB"
    assert first_after < 10


@pytest.mark.benchmark(group="preload")
def test_preload_falls_between_one_and_two_misses(benchmark):
    def measure():
        preload_ms, first_after, _ = measure_preload(seed=64)
        miss_ms = measure_cold_miss(seed=65)
        return preload_ms + first_after, miss_ms

    preload_plus_hit, miss = benchmark(measure)
    print(
        f"\npreload+hit = {preload_plus_hit:.0f} ms; "
        f"one miss = {miss:.0f} ms; two misses = {2 * miss:.0f} ms"
    )
    assert miss < preload_plus_hit < 2 * miss


@pytest.mark.benchmark(group="preload")
def test_preload_breakeven_sweep(benchmark):
    """Preloading wins from the second distinct query onward."""
    results = benchmark(measure_sweep)
    print("\nk distinct queries: cold total vs preload total (ms)")
    for k, cold, warm in results:
        winner = "preload" if warm < cold else "cold"
        print(f"  k={k}: cold={cold:7.0f}  preload={warm:7.0f}  -> {winner}")
    # k=1: preloading loses; k>=2: preloading wins.
    assert results[0][2] > results[0][1]
    for k, cold, warm in results[1:]:
        assert warm < cold, f"preload should win at k={k}"
    # Matches the analytic break-even.
    analytic = preload_breakeven_calls(390.0, 287.7, 7.0)
    assert 1 < analytic < 2
