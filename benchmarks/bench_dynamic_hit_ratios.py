"""The paper's open question: dynamic cache hit ratios in practice.

"Neither of these increments leads to a clear cut decision about the
most efficient location for the HNS or the NSMs.  Further work on the
dynamic cache hit ratios achieved in practice will be required to make
this decision for any particular workload."

This bench does that further work on the simulated testbed: fleets of
clients run FindNSM workloads against (a) per-client locally linked HNS
instances and (b) one shared remote HNS service, across workload
overlap regimes.  A shared cache's advantage is exactly the cross-client
overlap; equation (1) says remote placement needs ~12-15 % extra hits to
pay for its call — so high-overlap workloads should favour the shared
server and disjoint workloads the local copies.
"""

import pytest

from repro.core import HNSName
from repro.core.hns import serve_hns
from repro.hrpc import HRPCBinding, HrpcRuntime, HrpcServer
from repro.net.addresses import Endpoint
from repro.workloads import build_testbed
from repro.workloads.scenarios import BIND_NS, HNS_PORT

from conftest import run

N_CLIENTS = 6
CONTEXTS_PER_CLIENT = 6


def _register_contexts(testbed, count):
    """Extra contexts on the BIND name service, one per workload item."""
    from repro.core import HnsAdministrator

    admin = HnsAdministrator(testbed.make_metastore(testbed.meta_host))

    def register():
        for i in range(count):
            yield from admin.register_context(f"WL{i}", BIND_NS)

    run(testbed.env, register())


def _client_queries(i, overlap):
    """The query stream for client ``i``: each context touched once, so
    a client's own cache never helps — only sharing can.

    ``overlap=True``: everyone visits the same contexts (high
    cross-client locality).  ``overlap=False``: disjoint contexts per
    client (a shared cache gains nothing).
    """
    if overlap:
        contexts = [f"WL{k}" for k in range(CONTEXTS_PER_CLIENT)]
    else:
        contexts = [
            f"WL{i * CONTEXTS_PER_CLIENT + k}" for k in range(CONTEXTS_PER_CLIENT)
        ]
    return [HNSName(ctx, "fiji.cs.washington.edu") for ctx in contexts]


def measure_local(overlap, seed):
    """Each client links its own HNS library (private caches)."""
    testbed = build_testbed(seed=seed)
    _register_contexts(testbed, N_CLIENTS * CONTEXTS_PER_CLIENT)
    env = testbed.env
    latencies = []

    def one_client(i):
        host = testbed.internet.add_host(f"lc{i}")
        hns = testbed.make_hns(host)
        yield env.timeout(i * 3_000)  # arrivals spread out
        for name in _client_queries(i, overlap):
            start = env.now
            yield from hns.find_nsm(name, "HRPCBinding")
            latencies.append(env.now - start)

    for i in range(N_CLIENTS):
        env.process(one_client(i))
    env.run()
    return sum(latencies) / len(latencies)


def measure_remote(overlap, seed):
    """All clients call one shared remote HNS service."""
    testbed = build_testbed(seed=seed)
    _register_contexts(testbed, N_CLIENTS * CONTEXTS_PER_CLIENT)
    env = testbed.env
    hns = testbed.make_hns(testbed.hns_host)
    server = HrpcServer(testbed.hns_host)
    serve_hns(hns, server)
    server.listen(HNS_PORT)
    hns_binding = HRPCBinding(
        Endpoint(testbed.hns_host.address, HNS_PORT), "hns", suite="sunrpc"
    )
    latencies = []

    def one_client(i):
        host = testbed.internet.add_host(f"rc{i}")
        runtime = HrpcRuntime(host, testbed.internet)
        yield env.timeout(i * 3_000)
        for name in _client_queries(i, overlap):
            start = env.now
            yield from runtime.call(
                hns_binding, "FindNSM", str(name), "HRPCBinding",
                timeout_ms=10_000,
            )
            latencies.append(env.now - start)

    for i in range(N_CLIENTS):
        env.process(one_client(i))
    env.run()
    return sum(latencies) / len(latencies), hns.metastore.cache.hit_ratio


@pytest.mark.benchmark(group="dynamic-hit-ratios")
def test_shared_hns_wins_on_overlapping_workloads(benchmark):
    def measure():
        local = measure_local(overlap=True, seed=141)
        remote, hit_ratio = measure_remote(overlap=True, seed=141)
        return local, remote, hit_ratio

    local, remote, hit_ratio = benchmark(measure)
    print(
        f"\noverlapping workloads: local copies {local:.0f} ms/query, "
        f"shared remote HNS {remote:.0f} ms/query "
        f"(shared cache hit ratio {hit_ratio:.2f})"
    )
    # Everyone visits the same contexts: the shared cache absorbs each
    # cold miss once, so remote placement beats per-client local caches.
    assert remote < local


@pytest.mark.benchmark(group="dynamic-hit-ratios")
def test_local_hns_wins_on_disjoint_workloads(benchmark):
    def measure():
        local = measure_local(overlap=False, seed=142)
        remote, hit_ratio = measure_remote(overlap=False, seed=142)
        return local, remote, hit_ratio

    local, remote, hit_ratio = benchmark(measure)
    print(
        f"\ndisjoint workloads: local copies {local:.0f} ms/query, "
        f"shared remote HNS {remote:.0f} ms/query "
        f"(shared cache hit ratio {hit_ratio:.2f})"
    )
    # No cross-client overlap: the shared cache buys nothing beyond each
    # client's own locality, so the 43 ms call overhead decides it.
    assert local < remote
