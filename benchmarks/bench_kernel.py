"""Kernel dispatch throughput: timer wheel vs heap vs the pre-PR kernel.

The simulator's cost model is events processed per wall second.  This
bench pins that number for three kernels across the event shapes the
repository actually generates, and records everything in
``BENCH_kernel.json``:

- **seed-replica** — a faithful in-process replica of the pre-overhaul
  kernel's hot path (one ``heapq``, ``itertools``-style eids,
  ``step()`` per event, dict-backed events).  Replicating it here
  keeps the before/after ratio machine-independent: both sides run on
  the same interpreter in the same process.
- **heap** — today's kernel on the :class:`~repro.sim.wheel.HeapQueue`
  back end (slotted events + batched drain over the seed's heap).
- **wheel** — today's default: the hierarchical timer wheel.

Loads, from kernel-bound to workload-shaped:

- ``pure_timeout`` — a standing population of timeouts nobody waits
  on, drained to completion.  Pure queue + dispatch cost at depth;
  this is the regime of a million armed TTL/lease timers, and the
  headline ≥3x claim is asserted here.
- ``process_churn`` — concurrent generator processes each awaiting a
  chain of timeouts; dispatch plus the process-resume machinery.
- ``mixed_conditions`` — churn where every third wait is an
  ``AnyOf``/``AllOf`` fan-out (new kernels only; condition events).
- ``million_client_zipf`` — the real scenario from
  :mod:`repro.workloads.scenarios` at reduced population, run on both
  back ends, with the digest equality the determinism gate enforces.

The wheel trades a constant factor for depth-independence: it wins
big on standing timer populations and loses to the C-accelerated heap
on a depth-1 ping-pong chain.  Both numbers are recorded; neither is
hidden.

Set ``REPRO_BENCH_SMOKE=1`` for a reduced configuration (CI smoke).
"""

import gc
import heapq
import os
import random
import time

from repro.analysis.determinism import run_digest
from repro.sim import kernel as _kernel
from repro.sim.kernel import Environment
from repro.workloads.scenarios import build_million_client_zipf

from conftest import write_bench_results

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

PURE_EVENTS = 30_000 if SMOKE else 500_000
CHURN_PROCS = 200 if SMOKE else 2_000
CHURN_EVENTS_EACH = 20 if SMOKE else 100
MIXED_PROCS = 100 if SMOKE else 1_000
MIXED_ROUNDS_EACH = 10 if SMOKE else 40
MCLIENT_CLIENTS = 1_000 if SMOKE else 20_000
MCLIENT_CONTEXTS = 128 if SMOKE else 1_024
REPS = 2 if SMOKE else 5

#: Full-run headline: wheel vs pre-PR kernel on pure_timeout.  Measured
#: ~3-3.5x best-of-reps; asserted with margin because single-core
#: runners jitter both sides of the ratio.  Smoke uses a smaller
#: standing population (lower heap depth flatters the seed), so its
#: bound is looser — it exists to catch wholesale regressions in CI,
#: not to re-prove the headline.
MIN_PURE_SPEEDUP = 2.0 if SMOKE else 2.5

#: Absolute events/sec floor for the default kernel on pure_timeout —
#: deliberately far below any measurement (~1.3M/s locally) so it only
#: trips on catastrophic regressions, not slow CI runners.
MIN_PURE_EVENTS_PER_SEC = 100_000.0


# ----------------------------------------------------------------------
# The pre-PR kernel, replicated
# ----------------------------------------------------------------------
_PENDING = object()


class _SeedEvent:
    """Dict-backed event with the seed kernel's ``_process``."""

    def __init__(self, env):
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._exception = None
        self._defused = False

    def _process(self):
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks:
            callback(self)
        if self._exception is not None and not self._defused and not callbacks:
            raise self._exception


class _SeedTimeout(_SeedEvent):
    def __init__(self, env, delay, value=None):
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        super().__init__(env)
        self.delay = float(delay)
        self._value = value
        env._schedule(self, delay=self.delay)


class _SeedProcess(_SeedEvent):
    def __init__(self, env, generator, name=None):
        super().__init__(env)
        self.generator = generator
        self.name = name
        self._target = None
        start = _SeedEvent(env)
        start._value = None
        start.callbacks.append(self._resume)
        env._schedule(start)

    def _resume(self, event):
        exc = event._exception
        if exc is not None:
            event._defused = True
            self._step(throw=exc)
        else:
            self._step(send=event._value)

    def _step(self, send=None, throw=None):
        try:
            if throw is not None:
                target = self.generator.throw(throw)
            else:
                target = self.generator.send(send)
        except StopIteration as stop:
            self._value = stop.value
            self.env._schedule(self)
            return
        self._target = target
        target.callbacks.append(self._resume)


class SeedEnvironment:
    """The pre-overhaul kernel hot path: heapq + ``step()`` per event."""

    kernel_impl = "seed-replica"

    def __init__(self):
        self._now = 0.0
        self._queue = []
        self._eid = 0
        self.monitor = None

    @property
    def now(self):
        return self._now

    def timeout(self, delay, value=None):
        return _SeedTimeout(self, delay, value)

    def process(self, generator, name=None):
        return _SeedProcess(self, generator, name=name)

    def _schedule(self, event, delay=0.0):
        eid = self._eid
        self._eid = eid + 1
        heapq.heappush(self._queue, (self._now + delay, eid, event))

    def step(self):
        when, _, event = heapq.heappop(self._queue)
        self._now = when
        event._process()

    def run(self, until=None):
        queue = self._queue
        while queue:
            self.step()


# ----------------------------------------------------------------------
# Loads
# ----------------------------------------------------------------------
def _delay(rng):
    """The repository's event-delay shape: 30% immediate (cache hits,
    ``succeed()``), most of the rest sub-quarter-second (network and
    compute latencies), a far-future tail (TTLs, lease sweeps)."""
    r = rng.random()
    if r < 0.30:
        return 0.0
    if r < 0.895:
        return rng.random() * 250.0
    return rng.random() * 120_000.0


def load_pure_timeout(env):
    """A standing population of no-waiter timeouts.

    Shaped like the armed-timer regime this load exists to measure:
    mostly TTL/lease/refresh deferrals seconds-to-minutes out, a
    sub-second latency band, and a slice of immediates.  The standing
    population is what separates O(1) bucket scheduling from O(log n)
    heap maintenance.
    """
    rng = random.Random(42)
    timeout = env.timeout
    for _ in range(PURE_EVENTS):
        r = rng.random()
        if r < 0.10:
            timeout(0.0)
        elif r < 0.40:
            timeout(rng.random() * 250.0)
        else:
            timeout(rng.random() * 120_000.0)
    return PURE_EVENTS


def load_process_churn(env):
    """Concurrent processes each yielding a chain of timeouts."""

    def client(seed):
        rng = random.Random(seed)
        for _ in range(CHURN_EVENTS_EACH):
            yield env.timeout(_delay(rng))

    for i in range(CHURN_PROCS):
        env.process(client(i))
    return CHURN_PROCS * CHURN_EVENTS_EACH


def load_mixed_conditions(env):
    """Churn where every third wait fans out through AnyOf/AllOf."""

    def client(seed):
        rng = random.Random(seed)
        for round_no in range(MIXED_ROUNDS_EACH):
            if round_no % 3 == 2:
                events = [env.timeout(_delay(rng)) for _ in range(3)]
                if round_no % 2:
                    yield env.any_of(events)
                else:
                    yield env.all_of(events)
            else:
                yield env.timeout(_delay(rng))

    for i in range(MIXED_PROCS):
        env.process(client(i))
    # 3 timeouts + 1 condition per fan-out round, 1 timeout otherwise.
    per_round = [1, 1, 4]
    events = sum(per_round[r % 3] for r in range(MIXED_ROUNDS_EACH))
    return MIXED_PROCS * events


def _measure(make_env, load):
    """Best-of-REPS events/sec for ``load`` on ``make_env()``.

    The collector is paused around the timed region: a drain allocates
    and frees hundreds of thousands of events, and collector pauses
    landing in one kernel's window but not another's are the dominant
    noise source on a small runner.
    """
    best = float("inf")
    events = 0
    for _ in range(REPS):
        env = make_env()
        events = load(env)
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            env.run()
            best = min(best, time.perf_counter() - start)
        finally:
            gc.enable()
    return {
        "events": events,
        "wall_s": best,
        "events_per_sec": events / best,
    }


# ----------------------------------------------------------------------
# Benches
# ----------------------------------------------------------------------
def test_kernel_dispatch_throughput():
    kernels = {
        "seed-replica": SeedEnvironment,
        "heap": lambda: Environment(kernel_impl="heap"),
        "wheel": lambda: Environment(kernel_impl="wheel"),
    }
    loads = {
        "pure_timeout": (load_pure_timeout, kernels),
        "process_churn": (load_process_churn, kernels),
        "mixed_conditions": (
            load_mixed_conditions,
            {k: v for k, v in kernels.items() if k != "seed-replica"},
        ),
    }
    results = {}
    print()
    for load_name, (load, runnable) in loads.items():
        rows = {}
        for kernel_name, make_env in runnable.items():
            rows[kernel_name] = _measure(make_env, load)
        seed_rate = rows.get("seed-replica", {}).get("events_per_sec")
        for kernel_name, row in rows.items():
            row["vs_seed"] = (
                row["events_per_sec"] / seed_rate if seed_rate else None
            )
            ratio = f" ({row['vs_seed']:.2f}x seed)" if seed_rate else ""
            print(
                f"  {load_name:>16} {kernel_name:>12}: "
                f"{row['events_per_sec'] / 1000.0:8.0f}k ev/s{ratio}"
            )
        results[load_name] = rows

    pure = results["pure_timeout"]
    headline = pure["wheel"]["vs_seed"]
    results["headline"] = {
        "smoke": SMOKE,
        "pure_timeout_wheel_vs_seed": headline,
        "min_required": MIN_PURE_SPEEDUP,
    }
    write_bench_results("kernel", "dispatch", results)

    assert headline >= MIN_PURE_SPEEDUP, (
        f"wheel pure_timeout speedup {headline:.2f}x fell below "
        f"{MIN_PURE_SPEEDUP}x vs the pre-PR kernel"
    )
    assert pure["wheel"]["events_per_sec"] >= MIN_PURE_EVENTS_PER_SEC


def test_zipf_workload_before_after():
    """The existing testbed Zipf stream, before/after the queue swap.

    The seed replica cannot host the full HNS stack, so "before" here
    is today's kernel on the pre-PR queue discipline (``heap``) and
    "after" is the timer wheel; both sides share the slotted-event and
    batched-drain gains, isolating what the wheel itself buys (or
    costs) on a testbed-shaped event stream.
    """
    from repro.core import Arrangement, HNSName
    from repro.workloads import build_stack, build_testbed
    from repro.workloads.generator import QueryWorkload

    queries = 40 if SMOKE else 400
    rows = {}
    for impl in ("heap", "wheel"):
        saved_impl = _kernel.DEFAULT_KERNEL_IMPL
        _kernel.DEFAULT_KERNEL_IMPL = impl
        try:
            best = float("inf")
            for _ in range(REPS):
                testbed = build_testbed(seed=13)
                stack = build_stack(testbed, Arrangement.ALL_LOCAL)
                env = testbed.env
                population = [
                    (
                        HNSName("BIND-cs", f"{host}.cs.washington.edu"),
                        "HostAddress",
                        {},
                    )
                    for host in ("fiji", "june", "ns0", "client")
                ]
                workload = QueryWorkload(
                    env, population, mean_interarrival_ms=40.0, zipf_s=1.1
                )

                def drive():
                    for query in workload.generate(queries):
                        if query.at_ms > env.now:
                            yield env.timeout(query.at_ms - env.now)
                        yield from stack.hns.find_nsm(
                            query.hns_name, query.query_class
                        )

                start = time.perf_counter()
                env.run(until=env.process(drive()))
                best = min(best, time.perf_counter() - start)
        finally:
            _kernel.DEFAULT_KERNEL_IMPL = saved_impl
        rows[impl] = {
            "queries": queries,
            "events": env._eid,
            "wall_s": best,
            "events_per_sec": env._eid / best,
        }
    print()
    for impl, row in rows.items():
        print(
            f"  zipf_workload {impl:>6}: "
            f"{row['events_per_sec'] / 1000.0:8.0f}k ev/s "
            f"({row['events']} events over {row['queries']} queries)"
        )
    write_bench_results("kernel", "zipf_workload", rows)


def test_million_client_zipf_backends():
    """The headline scenario on both back ends: same digest, and the
    wheel at least competitive at population scale."""
    rows = {}
    digests = {}
    for impl in ("wheel", "heap"):
        # The builder runs the whole simulation and picks its back end
        # from the module default, so flip that for the measurement.
        saved_impl = _kernel.DEFAULT_KERNEL_IMPL
        _kernel.DEFAULT_KERNEL_IMPL = impl
        try:
            best = float("inf")
            for _ in range(REPS):
                start = time.perf_counter()
                env = build_million_client_zipf(
                    seed=0,
                    clients=MCLIENT_CLIENTS,
                    contexts=MCLIENT_CONTEXTS,
                )
                best = min(best, time.perf_counter() - start)
        finally:
            _kernel.DEFAULT_KERNEL_IMPL = saved_impl
        rows[impl] = {
            "clients": MCLIENT_CLIENTS,
            "events": env._eid,
            "wall_s": best,
            "events_per_sec": env._eid / best,
            "requests": env.stats.counter("sim.mclient.requests").value,
            "cache_hits": env.stats.counter("sim.mclient.cache_hits").value,
        }
        digests[impl] = run_digest(env)
    print()
    for impl, row in rows.items():
        print(
            f"  million_client_zipf {impl:>6}: "
            f"{row['events_per_sec'] / 1000.0:8.0f}k ev/s "
            f"({row['events']} events, {row['requests']} requests)"
        )
    rows["digest_match"] = digests["wheel"] == digests["heap"]
    write_bench_results("kernel", "million_client_zipf", rows)
    assert digests["wheel"] == digests["heap"], (
        "wheel and heap back ends diverged on million_client_zipf: "
        f"{digests['wheel']} != {digests['heap']}"
    )
