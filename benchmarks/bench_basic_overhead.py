"""Section 3 "Performance": the basic overhead of HNS naming.

Regenerates the prose measurements around Table 3.1:

- FindNSM cold vs cached (the paper: 460 -> 88 msec; our decomposition
  of Table 3.1 row 1 puts the six cold mappings at ~288 ms — see
  EXPERIMENTS.md for why the two of the paper's own numbers cannot
  both hold);
- the remote call to an NSM (paper: 22-38 msec; the table's own
  single-call deltas are 43-57);
- native lookups: BIND 27 msec, Clearinghouse 156 msec.
"""

import pytest

from repro.bind import BindResolver
from repro.clearinghouse import ClearinghouseClient
from repro.harness import ComparisonTable
from repro.hrpc import HRPCBinding, HrpcRuntime, HrpcServer
from repro.workloads import build_testbed
from repro.workloads.scenarios import CREDENTIALS

from conftest import FIJI, timed


def measure_findnsm(seed=41):
    testbed = build_testbed(seed=seed)
    hns = testbed.make_hns(testbed.client)
    env = testbed.env
    cold = timed(env, hns.find_nsm(FIJI, "HRPCBinding"))
    warm = timed(env, hns.find_nsm(FIJI, "HRPCBinding"))
    return cold, warm


def measure_native(seed=42):
    testbed = build_testbed(seed=seed)
    env = testbed.env
    resolver = BindResolver(
        testbed.client,
        testbed.udp,
        testbed.public_endpoint,
        calibration=testbed.calibration,
    )
    bind_ms = timed(env, resolver.lookup_address("fiji.cs.washington.edu"))
    ch = ClearinghouseClient(
        testbed.client, testbed.tcp, testbed.ch_endpoint, CREDENTIALS
    )
    ch_ms = timed(env, ch.lookup_address("dlion:hcs:uw"))
    return bind_ms, ch_ms


def measure_nsm_remote_call(seed=43):
    """Cost of the remote call itself (warm NSM, so only call overhead)."""
    testbed = build_testbed(seed=seed)
    env = testbed.env
    from repro.core import NsmStub, serve_nsm

    nsm = testbed.make_bind_binding_nsm(testbed.nsm_host)
    server = HrpcServer(testbed.nsm_host)
    program = serve_nsm(server, nsm)
    endpoint = server.listen(9100)
    runtime = HrpcRuntime(testbed.client, testbed.internet)
    stub = NsmStub(testbed.client, runtime)
    binding = HRPCBinding(endpoint, program, suite="sunrpc")
    timed(env, stub.call(binding, FIJI, service="DesiredService"))  # warm it
    warm_remote = timed(env, stub.call(binding, FIJI, service="DesiredService"))
    return warm_remote - 3.0  # subtract the NSM's cache-hit work


@pytest.mark.benchmark(group="basic-overhead")
def test_findnsm_cost_and_caching(benchmark):
    cold, warm = benchmark(measure_findnsm)
    print(f"\nFindNSM cold: {cold:.1f} ms; cached: {warm:.1f} ms "
          f"(paper: 460 uncached -> 88 with cache; see EXPERIMENTS.md)")
    benchmark.extra_info["cold_ms"] = round(cold, 1)
    benchmark.extra_info["warm_ms"] = round(warm, 1)
    # Shape: caching wins by a large factor.
    assert cold / warm > 5
    assert cold == pytest.approx(287.7, rel=0.02)
    assert warm == pytest.approx(7.0, rel=0.02)


@pytest.mark.benchmark(group="basic-overhead")
def test_native_lookup_costs(benchmark):
    bind_ms, ch_ms = benchmark(measure_native)
    table = ComparisonTable("Native name service lookups (msec)")
    table.add("BIND name-to-address", 27.0, bind_ms)
    table.add("Clearinghouse name-to-address", 156.0, ch_ms)
    print()
    print(table.render())
    table.check(tolerance_pct=2.0)


@pytest.mark.benchmark(group="basic-overhead")
def test_nsm_remote_call_cost(benchmark):
    call_ms = benchmark(measure_nsm_remote_call)
    print(
        f"\nremote NSM call overhead: {call_ms:.1f} ms "
        "(paper text: 22-38; paper's own Table 3.1 deltas: 43-57)"
    )
    benchmark.extra_info["nsm_call_ms"] = round(call_ms, 1)
    assert 38 <= call_ms <= 50


@pytest.mark.benchmark(group="basic-overhead")
def test_total_hns_overhead_band(benchmark):
    """'the basic overhead of HNS naming is between 88 and 126 msec':
    cached FindNSM plus (0 or 1) remote NSM call.  Our calibrated
    figures put the band at ~7 to ~50 ms on top of the NSM's work; the
    *structure* (a narrow cached band far below any cold path) holds."""

    def band():
        cold, warm = measure_findnsm(seed=44)
        call = measure_nsm_remote_call(seed=45)
        return warm, warm + call, cold

    low, high, cold = benchmark(band)
    print(f"\ncached HNS overhead band: {low:.1f} - {high:.1f} ms (cold {cold:.0f})")
    assert high < cold / 4
