"""An evolving system: integrate a new system type with zero client change.

The paper's raison d'etre: "applications existing in newly introduced
subsystems can continue to run unaltered, while the modifications they
make in their local name services are automatically reflected in the
global name service."

This example:

1. builds the testbed and an ordinary HNS client;
2. introduces a brand-new department with its own BIND (the new
   "system type") — all that happens is *registration*: a name service
   record, a context, and one NSM;
3. shows the unmodified client resolving names in the new system;
4. shows a *native* application on the new system adding a host through
   its own name service, and that change being instantly visible
   globally — no reregistration, ever.

Run:  python examples/evolving_system.py
"""

from repro.bind import BindServer, ResourceRecord, Zone
from repro.core import HNSName, HnsAdministrator
from repro.workloads import build_testbed


def main() -> None:
    testbed = build_testbed(seed=3)
    env = testbed.env

    # The "existing" client: built before the new system exists.
    hns = testbed.make_hns(testbed.client)
    hostaddr_nsm = testbed.make_bind_hostaddr_nsm(testbed.client)

    def resolve(context: str, name: str):
        result = yield from hostaddr_nsm.query(HNSName(context, name))
        return result.value["address"]

    # ------------------------------------------------------------------
    # A new department arrives with its own name service and hosts.
    # ------------------------------------------------------------------
    print("introducing a new system type: the astronomy department ...")
    astro_host = testbed.internet.add_host("astrons")
    astro_zone = Zone("astro.washington.edu")
    astro_zone.add(ResourceRecord.a_record("kepler.astro.washington.edu", "128.95.1.150"))
    astro_server = BindServer(astro_host, zones=[astro_zone], name="astro-bind")
    astro_endpoint = astro_server.listen()

    admin = HnsAdministrator(testbed.make_metastore(testbed.meta_host))

    def integrate():
        yield from admin.register_name_service(
            "BIND-astro", "bind", "astrons.cs.washington.edu", 53
        )
        yield from admin.register_context("ASTRO", "BIND-astro")
        yield from admin.register_nsm(
            nsm_name="HostAddress-BIND-astro",
            query_class="HostAddress",
            name_service="BIND-astro",
            host_name="nsmhost.cs.washington.edu",
            host_context="BIND-srv",
            program="nsm.HostAddress-BIND-astro",
            suite="sunrpc",
            port=9300,
        )

    env.run(until=env.process(integrate()))
    print("  registered: name service + context + one NSM. That's all.\n")

    # The client needs an NSM *instance* for the new service; here we
    # link one locally (a remote one shared by everyone works the same).
    from repro.core.nsms import BindHostAddressNSM

    astro_nsm = BindHostAddressNSM(
        testbed.client, "BIND-astro", testbed.udp, astro_endpoint,
        calibration=testbed.calibration,
    )
    hns.link_local_nsm(astro_nsm)

    def demo():
        # 1. The unmodified client resolves a name in the new system.
        binding = yield from hns.find_nsm(
            HNSName("ASTRO", "kepler.astro.washington.edu"), "HostAddress"
        )
        print(f"unmodified client, new system: FindNSM -> {binding.describe()}")
        result = yield from astro_nsm.query(
            HNSName("ASTRO", "kepler.astro.washington.edu")
        )
        print(f"  kepler.astro.washington.edu -> {result.value['address']}\n")

        # 2. A native application on the new system adds a host through
        #    ITS OWN name service — direct access means the HNS sees it.
        print("native application adds 'hubble' via its local name service ...")
        astro_zone.add(
            ResourceRecord.a_record("hubble.astro.washington.edu", "128.95.1.151")
        )
        result = yield from astro_nsm.query(
            HNSName("ASTRO", "hubble.astro.washington.edu")
        )
        print(
            f"  globally visible immediately: hubble -> {result.value['address']}"
        )
        print("  (no reregistration happened; the data never left the local service)")

    env.run(until=env.process(demo()))


if __name__ == "__main__":
    main()
