"""Figure 2.1 walkthrough: HNS query processing, step by step.

One client resolves a name held in the Clearinghouse, then one held in
BIND.  The client code is identical both times; the HNS picks the NSM,
and the NSM speaks whatever its name service speaks (authenticated
Courier + disk on the Xerox side, in-memory DNS on the UNIX side).

Run:  python examples/hrpc_binding_walkthrough.py
"""

from repro.core import Arrangement, HNSName
from repro.workloads import build_stack, build_testbed


def main() -> None:
    testbed = build_testbed(seed=2)
    env = testbed.env
    env.trace.enabled = True

    # Client with both binding NSMs linked in (the figure's view).
    stack = build_stack(testbed, Arrangement.ALL_LOCAL, name_service="CH-hcs")
    bind_nsm = testbed.make_bind_binding_nsm(testbed.client)
    stack.hns.link_local_nsm(bind_nsm)
    stack.importer.nsm_stub.link_local(bind_nsm)

    queries = [
        ("PrintService", HNSName("CH-hcs", "dlion:hcs:uw")),
        ("DesiredService", HNSName("BIND-cs", "fiji.cs.washington.edu")),
    ]

    def client():
        for service, name in queries:
            print(f"\n=== Query: {service} @ {name} ===")
            mark = len(env.trace.records)
            start = env.now
            binding = yield from stack.importer.import_binding(service, name)
            elapsed = env.now - start
            for record in env.trace.records[mark:]:
                print(f"  {record}")
            print(f"  => {binding.describe()}   [{elapsed:.1f} simulated ms]")

    env.run(until=env.process(client()))
    print(
        "\nSame client interface both times; the Clearinghouse query is "
        "slower because every access is authenticated and its data is on "
        "disk (156 vs 27 ms native lookups)."
    )


if __name__ == "__main__":
    main()
