"""Heterogeneous filing: Fetch/Store over global names.

The HCS file system mediates access to the local file systems of every
system type.  This example names two volumes — one exported by a UNIX
file server, one by a Xerox machine — and copies a file between them.
The client never learns which is which: the FileService NSMs resolve
each volume to (server binding, native volume id).

Run:  python examples/heterogeneous_filing.py
"""

from repro.core import HNSName, NsmStub
from repro.hcsfs import FILE_PROGRAM, FileServer, HcsFileSystem
from repro.hrpc import HrpcRuntime
from repro.workloads import build_testbed

SRC = HNSName("BIND-cs", "src.projects.cs.washington.edu")   # UNIX volume
DOCS = HNSName("CH-hcs", "docs:hcs:uw")                      # Xerox volume


def main() -> None:
    testbed = build_testbed(seed=6)
    env = testbed.env

    # File servers on both sides, registered with their native binding
    # protocols (portmapper on the Sun, Courier binder on the D-machine).
    fiji_fs = FileServer(testbed.fiji, volumes=["/projects/src"], port=9600)
    testbed.fiji.service_at(111).register_local(FILE_PROGRAM, 9600)
    dlion_fs = FileServer(testbed.dlion, volumes=["/docs"], port=9601)
    testbed.dlion.service_at(5002).advertise_local(FILE_PROGRAM, 9601)
    dlion_fs.put_direct("/docs", "sosp87.ms", b".TL\nA Name Service for Evolving, Heterogeneous Systems\n")

    # The client: HNS + the two FileService NSMs, linked in.
    hns = testbed.make_hns(testbed.client)
    stub = NsmStub(testbed.client)
    for nsm in (
        testbed.make_bind_file_nsm(testbed.client),
        testbed.make_ch_file_nsm(testbed.client),
    ):
        hns.link_local_nsm(nsm)
        stub.link_local(nsm)
    fs = HcsFileSystem(
        testbed.client, hns, stub, HrpcRuntime(testbed.client, testbed.internet)
    )

    def session():
        data = yield from fs.fetch(DOCS, "sosp87.ms")
        print(f"fetched {DOCS}::sosp87.ms ({len(data)} bytes, from the Xerox side)")
        stored = yield from fs.copy(DOCS, "sosp87.ms", SRC, "papers/sosp87.ms")
        print(f"copied to {SRC}::papers/sosp87.ms ({stored} bytes, onto the UNIX side)")
        names = yield from fs.listdir(SRC, prefix="papers/")
        print(f"listing of {SRC}::papers/ -> {names}")

    env.run(until=env.process(session()))
    print(
        "\nThe same Fetch/Store interface reached two file systems with "
        "different naming,\nbinding protocols, and wire formats — located "
        "through the HNS, not a location database."
    )


if __name__ == "__main__":
    main()
