"""Colocation tradeoffs: Table 3.1 and equation (1), interactively.

Measures all five client/HNS/NSM placements under the three cache
states, prints the grid next to the paper's numbers, and then runs the
equation (1) arithmetic to answer the paper's closing question: when is
a shared remote HNS (or NSM) worth the extra call?

Run:  python examples/colocation_tradeoffs.py
"""

from repro.core import Arrangement, ColocationModel, HNSName
from repro.workloads import build_stack, build_testbed

PAPER = {
    Arrangement.ALL_LOCAL: (460, 180, 104),
    Arrangement.AGENT: (517, 235, 137),
    Arrangement.REMOTE_HNS: (515, 232, 140),
    Arrangement.REMOTE_NSMS: (509, 225, 147),
    Arrangement.ALL_REMOTE: (547, 261, 181),
}

NAME = HNSName("BIND-cs", "fiji.cs.washington.edu")


def measure(arrangement):
    testbed = build_testbed(seed=5)
    stack = build_stack(testbed, arrangement)
    env = testbed.env

    def one():
        start = env.now
        yield from stack.importer.import_binding("DesiredService", NAME)
        return env.now - start

    def timed():
        return env.run(until=env.process(one()))

    stack.flush_all_caches()
    return timed(), (stack.flush_nsm_caches() or timed()), timed()


def main() -> None:
    print("Table 3.1 — HRPC binding by colocation arrangement (simulated ms)")
    print(f"{'arrangement':<24} {'A miss':>16} {'B HNS hit':>16} {'C both hit':>16}")
    grid = {}
    for arrangement in Arrangement:
        cells = measure(arrangement)
        grid[arrangement] = cells
        row = f"{arrangement.label:<24}"
        for measured, paper in zip(cells, PAPER[arrangement]):
            row += f"  {measured:6.0f} (p={paper:3d})"
        print(row)

    print("\nEquation (1): extra cache-hit fraction a remote placement needs")
    remote_call = 34.2
    hns_model = ColocationModel(
        remote_call,
        cache_miss_ms=grid[Arrangement.ALL_REMOTE][0],
        cache_hit_ms=grid[Arrangement.ALL_REMOTE][1],
    )
    nsm_model = ColocationModel(
        remote_call,
        cache_miss_ms=grid[Arrangement.REMOTE_NSMS][1],
        cache_hit_ms=grid[Arrangement.REMOTE_NSMS][2],
    )
    print(f"  remote HNS needs  q > {100 * hns_model.q_threshold():5.1f}%   (paper: ~11%)")
    print(f"  remote NSMs need  q > {100 * nsm_model.q_threshold():5.1f}%   (paper: ~42%)")
    print(
        "\nLesson (verbatim from the paper): 'the potential benefit of "
        "caching far\nexceeds that obtainable solely by colocation.'"
    )


if __name__ == "__main__":
    main()
