"""Quickstart: bind to a service through the HNS and call it.

Stands up the simulated HCS testbed (one Ethernet, a modified meta-BIND,
a public BIND, a Clearinghouse, a Sun host and a Xerox host), then does
what the paper's client does:

    Import(ServiceName: "DesiredService",
           HostName:    "BIND, fiji.cs.washington.edu",
           ResultBinding: DesiredBinding)

and finally calls the imported binding through HRPC.

Run:  python examples/quickstart.py
"""

from repro.core import Arrangement, HNSName
from repro.hrpc import HrpcRuntime
from repro.workloads import build_stack, build_testbed


def main() -> None:
    # 1. The environment: every server, zone, and meta registration.
    testbed = build_testbed(seed=1)
    env = testbed.env

    # 2. A client stack: here everything linked into the client process
    #    (Table 3.1 row 1); see colocation_tradeoffs.py for the others.
    stack = build_stack(testbed, Arrangement.ALL_LOCAL)

    # 3. The global name of the target host: context + individual name.
    name = HNSName("BIND-cs", "fiji.cs.washington.edu")

    def client() :
        start = env.now
        binding = yield from stack.importer.import_binding(
            "DesiredService", name
        )
        first_ms = env.now - start
        print(f"imported {binding.describe()}")
        print(f"  first import (cold caches): {first_ms:7.1f} simulated ms")

        start = env.now
        yield from stack.importer.import_binding("DesiredService", name)
        print(f"  second import (warm caches): {env.now - start:6.1f} simulated ms")

        # 4. Use the binding: a real HRPC call to the Sun RPC server.
        runtime = HrpcRuntime(testbed.client, testbed.internet)
        reply = yield from runtime.call(binding, "ping", "hello, 1987")
        print(f"  called the service: reply = {reply!r}")

    env.run(until=env.process(client()))


if __name__ == "__main__":
    main()
