"""Mail naming: one query class, two very different name services.

The HCS mail service needs to locate mailboxes for users whose naming
data lives either in BIND (UNIX users) or the Clearinghouse (Xerox
users).  With one MailboxLocation NSM per name service, the mail agent
asks the HNS which NSM to use and never parses a heterogeneous address
itself — the contrast with sendmail's rewriting rules the paper draws.

Run:  python examples/mail_naming.py
"""

from repro.core import HNSName, LocalNsmBinding, NsmStub
from repro.workloads import build_testbed


def main() -> None:
    testbed = build_testbed(seed=4)
    env = testbed.env

    # A mail agent process with both mail NSMs linked in.
    hns = testbed.make_hns(testbed.client)
    nsms = {
        "MailboxLocation-BIND-cs": testbed.make_bind_mail_nsm(testbed.client),
        "MailboxLocation-CH-hcs": testbed.make_ch_mail_nsm(testbed.client),
    }
    for nsm in nsms.values():
        hns.link_local_nsm(nsm)
    stub = NsmStub(testbed.client, local_nsms=nsms)

    recipients = [
        HNSName("BIND-cs", "schwartz.cs.washington.edu"),  # a UNIX user
        HNSName("CH-hcs", "levy:hcs:uw"),                  # a Xerox user
    ]

    def mail_agent():
        for recipient in recipients:
            nsm_binding = yield from hns.find_nsm(recipient, "MailboxLocation")
            which = (
                nsm_binding.nsm.name
                if isinstance(nsm_binding, LocalNsmBinding)
                else nsm_binding.program
            )
            result = yield from stub.call(nsm_binding, recipient)
            print(f"deliver to {recipient}")
            print(f"  via NSM:   {which}")
            print(f"  mail host: {result.value['mail_host']}")
            print(f"  mailbox:   {result.value['mailbox']}\n")

    env.run(until=env.process(mail_agent()))
    print(
        "The mail agent never knew one answer came from an in-memory DNS\n"
        "and the other from an authenticated, disk-resident Clearinghouse."
    )


if __name__ == "__main__":
    main()
