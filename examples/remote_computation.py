"""Remote computation: the third HCS core service, over the HNS.

Submits jobs to compute hosts named in different name services, and
demonstrates failover when a compute host dies — the executor simply
rebinds through the HNS.

Run:  python examples/remote_computation.py
"""

from repro.core import HNSName, NsmStub
from repro.core.import_call import HrpcImporter, LocalFinder
from repro.hrpc import HrpcRuntime
from repro.rexec import REXEC_PROGRAM, RexecServer
from repro.rexec.client import RemoteExecutor
from repro.workloads import build_testbed

FIJI = HNSName("BIND-cs", "fiji.cs.washington.edu")
JUNE = HNSName("BIND-cs", "june.cs.washington.edu")
DLION = HNSName("CH-hcs", "dlion:hcs:uw")

CORPUS = b"""the hns differs significantly from other name services because
of the requirements of our heterogeneous environment"""


def main() -> None:
    testbed = build_testbed(seed=7)
    env = testbed.env

    # Workers on a Sun, a MicroVAX, and a Xerox D-machine.
    from repro.hrpc import Portmapper

    for host in (testbed.fiji, testbed.june):
        worker = RexecServer(host, calibration=testbed.calibration)
        pm = host.service_at(111) or Portmapper(host, calibration=testbed.calibration)
        if pm.endpoint is None:
            pm.listen()
        pm.register_local(REXEC_PROGRAM, worker.endpoint.port)
    ch_worker = RexecServer(testbed.dlion, calibration=testbed.calibration)
    testbed.dlion.service_at(5002).advertise_local(
        REXEC_PROGRAM, ch_worker.endpoint.port
    )

    # Client wiring: HNS + binding NSMs, all in-process.
    hns = testbed.make_hns(testbed.client)
    stub = NsmStub(testbed.client)
    for nsm in (
        testbed.make_bind_binding_nsm(testbed.client),
        testbed.make_ch_binding_nsm(testbed.client),
    ):
        hns.link_local_nsm(nsm)
        stub.link_local(nsm)
    runtime = HrpcRuntime(testbed.client, testbed.internet)
    importer = HrpcImporter.direct(
        testbed.client, LocalFinder(hns), stub,
        calibration=testbed.calibration,
    )
    executor = RemoteExecutor(testbed.client, importer, runtime)

    def session():
        for target in (FIJI, DLION):
            reply = yield from executor.run_on(target, "wordcount", CORPUS)
            print(
                f"wordcount on {target}: {reply['result']} "
                f"(ran on host {reply['host']!r})"
            )
        # Failover: fiji dies mid-campaign; run_anywhere moves on.
        print("\ncrashing fiji and resubmitting with candidates [fiji, june]...")
        testbed.fiji.crash()
        reply = yield from executor.run_anywhere(
            [FIJI, JUNE], "checksum", CORPUS
        )
        print(f"checksum landed on {reply['host']!r}: {reply['result']['sha256'][:16]}...")

    env.run(until=env.process(session()))


if __name__ == "__main__":
    main()
