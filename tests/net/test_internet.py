"""Topology construction and routing."""

import pytest

from repro.net import DatagramTransport, Internetwork, NoRouteToHost, Service
from repro.net.addresses import NetworkAddress
from repro.sim import ConstantLatency, Environment


class Sink(Service):
    def __init__(self):
        self.got = []

    def handle(self, datagram, responder):
        self.got.append(datagram.payload)
        responder("ok", 8)
        return
        yield


def test_add_host_auto_creates_segment():
    env = Environment()
    net = Internetwork(env)
    host = net.add_host("alpha")
    assert net.segments
    assert net.host_named("alpha") is host
    assert net.host_at(host.address) is host


def test_duplicate_host_name_rejected():
    env = Environment()
    net = Internetwork(env)
    net.add_host("a")
    with pytest.raises(ValueError):
        net.add_host("a")


def test_hosts_get_distinct_addresses():
    env = Environment()
    net = Internetwork(env)
    hosts = [net.add_host(f"h{i}") for i in range(20)]
    assert len({str(h.address) for h in hosts}) == 20


def test_foreign_segment_rejected():
    env = Environment()
    net1, net2 = Internetwork(env), Internetwork(env)
    seg2 = net2.add_segment()
    with pytest.raises(ValueError):
        net1.add_host("x", segment=seg2)


def test_route_within_segment_has_no_gateway_cost():
    env = Environment()
    net = Internetwork(env, gateway_hop_ms=50)
    seg = net.add_segment(latency=ConstantLatency(2.0))
    a = net.add_host("a", seg)
    b = net.add_host("b", seg)
    assert net.path_delay(a.address, b.address, 0) == 2.0


def test_route_across_segments_pays_gateway_hop():
    env = Environment()
    net = Internetwork(env, gateway_hop_ms=50)
    seg1 = net.add_segment(latency=ConstantLatency(2.0))
    seg2 = net.add_segment(latency=ConstantLatency(3.0))
    a = net.add_host("a", seg1)
    b = net.add_host("b", seg2)
    assert net.path_delay(a.address, b.address, 0) == 55.0


def test_no_route_to_unknown_address():
    env = Environment()
    net = Internetwork(env)
    a = net.add_host("a")
    with pytest.raises(NoRouteToHost):
        net.path_delay(a.address, NetworkAddress("1.2.3.4"), 0)


def test_cross_segment_request_roundtrip():
    env = Environment(seed=3)
    net = Internetwork(env, gateway_hop_ms=10)
    seg1 = net.add_segment(latency=ConstantLatency(2.0))
    seg2 = net.add_segment(latency=ConstantLatency(2.0))
    client = net.add_host("client", seg1)
    server = net.add_host("server", seg2)
    sink = Sink()
    ep = server.bind(9000, sink)
    udp = DatagramTransport(net)

    def caller():
        reply = yield from udp.request(client, ep, "cross", 0)
        return reply, env.now

    p = env.process(caller())
    reply, when = env.run(until=p)
    assert reply == "ok"
    assert when == 28.0  # (2+2+10) each way
    assert sink.got == ["cross"]


def test_same_host_detection():
    env = Environment()
    net = Internetwork(env)
    a = net.add_host("a")
    b = net.add_host("b")
    assert net.same_host(a.address, a.address)
    assert not net.same_host(a.address, b.address)


def test_gateway_delay_validation():
    with pytest.raises(ValueError):
        Internetwork(Environment(), gateway_hop_ms=-1)
