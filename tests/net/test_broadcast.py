"""Transport broadcast + the decentralized locator built on it."""

import pytest

from repro.broadcast import BroadcastLocator, NameOwnerService
from repro.net import DatagramTransport, Internetwork, Service
from repro.sim import ConstantLatency, Environment


@pytest.fixture
def world():
    env = Environment(seed=77)
    net = Internetwork(env)
    seg = net.add_segment(latency=ConstantLatency(1.0, 0.0008))
    hosts = [net.add_host(f"h{i}", seg) for i in range(6)]
    udp = DatagramTransport(net)
    return env, net, seg, hosts, udp


def run(env, gen):
    return env.run(until=env.process(gen))


class CountingEcho(Service):
    def __init__(self):
        self.seen = 0

    def handle(self, datagram, responder):
        self.seen += 1
        responder(("echo", datagram.payload), 16)
        return
        yield


def test_broadcast_reaches_all_listeners(world):
    env, net, seg, hosts, udp = world
    services = [h.bind(4000, CountingEcho()) and h.service_at(4000) for h in hosts[1:]]
    replies = run(env, udp.broadcast(hosts[0], 4000, "ping", 16, wait_ms=50))
    assert len(replies) == 5
    assert all(s.seen == 1 for s in services)


def test_broadcast_skips_sender_and_unbound(world):
    env, net, seg, hosts, udp = world
    hosts[0].bind(4000, CountingEcho())  # sender itself: not delivered
    target = CountingEcho()
    hosts[1].bind(4000, target)
    replies = run(env, udp.broadcast(hosts[0], 4000, "x", wait_ms=50))
    assert len(replies) == 1
    assert hosts[0].service_at(4000).seen == 0


def test_broadcast_first_only_returns_early(world):
    env, net, seg, hosts, udp = world
    for h in hosts[1:]:
        h.bind(4000, CountingEcho())
    start = env.now
    replies = run(
        env, udp.broadcast(hosts[0], 4000, "x", wait_ms=500, first_only=True)
    )
    assert len(replies) == 1
    assert env.now - start < 500  # did not sit out the whole window


def test_broadcast_from_down_host_rejected(world):
    env, net, seg, hosts, udp = world
    hosts[0].crash()
    from repro.net import HostDown

    def scenario():
        with pytest.raises(HostDown):
            yield from udp.broadcast(hosts[0], 4000, "x")
        return "done"

    assert run(env, scenario()) == "done"


def test_broadcast_down_receivers_silent(world):
    env, net, seg, hosts, udp = world
    for h in hosts[1:]:
        h.bind(4000, CountingEcho())
    hosts[2].crash()
    hosts[3].crash()
    replies = run(env, udp.broadcast(hosts[0], 4000, "x", wait_ms=50))
    assert len(replies) == 3


# ----------------------------------------------------------------------
# The locator
# ----------------------------------------------------------------------
def test_locator_finds_owner(world):
    env, net, seg, hosts, udp = world
    owners = [NameOwnerService(h) for h in hosts[1:]]
    owners[2].own("printservice", port=6001)
    locator = BroadcastLocator(hosts[0], udp)
    answer = run(env, locator.locate("PrintService"))
    assert answer.owner == hosts[3].name
    assert answer.address == str(hosts[3].address)
    # Field values are stringified on the wire (see broadcast/messages.py).
    assert answer.data == {"port": "6001"}


def test_locator_no_owner_raises(world):
    env, net, seg, hosts, udp = world
    for h in hosts[1:]:
        NameOwnerService(h)
    locator = BroadcastLocator(hosts[0], udp, wait_ms=40)

    def scenario():
        with pytest.raises(LookupError):
            yield from locator.locate("ghost")
        return env.now

    when = run(env, scenario())
    assert when >= 40  # waited the full window before giving up


def test_every_host_pays_for_every_query(world):
    """The broadcast tax: all owners examine all queries."""
    env, net, seg, hosts, udp = world
    owners = [NameOwnerService(h) for h in hosts[1:]]
    owners[0].own("svc-a")
    locator = BroadcastLocator(hosts[0], udp)
    for _ in range(4):
        run(env, locator.locate("svc-a"))
    assert all(o.examined == 4 for o in owners)


def test_own_disown(world):
    env, net, seg, hosts, udp = world
    owner = NameOwnerService(hosts[1])
    owner.own("X", port=1)
    assert owner.owns("x")
    assert owner.disown("X")
    assert not owner.owns("x")
    assert not owner.disown("X")
    with pytest.raises(ValueError):
        owner.own("")
    with pytest.raises(ValueError):
        BroadcastLocator(hosts[0], udp, wait_ms=0)


def test_ownership_moves_with_service(world):
    """Decentralized interpretation: relocation needs no registry update."""
    env, net, seg, hosts, udp = world
    a = NameOwnerService(hosts[1])
    b = NameOwnerService(hosts[2])
    a.own("mobile")
    locator = BroadcastLocator(hosts[0], udp)
    assert run(env, locator.locate("mobile")).owner == hosts[1].name
    a.disown("mobile")
    b.own("mobile")
    assert run(env, locator.locate("mobile")).owner == hosts[2].name
