"""Property tests: the datagram transport under random loss.

Invariant: ``request()`` always terminates — either with the reply or
with :class:`TransportTimeout` after a bounded number of attempts —
regardless of the loss rate.  Silence-forever is not an outcome.
"""

from hypothesis import given, settings, strategies as st

from repro.net import (
    DatagramTransport,
    Internetwork,
    Service,
    TransportTimeout,
)
from repro.sim import ConstantLatency, Environment


class Echo(Service):
    """Replies immediately."""

    def handle(self, datagram, responder):
        responder(("ok", datagram.payload), 16)
        return
        yield


@given(
    st.floats(min_value=0.0, max_value=0.9),
    st.integers(min_value=0, max_value=6),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=40, deadline=None)
def test_request_always_terminates_under_loss(drop, retries, seed):
    env = Environment(seed=seed)
    net = Internetwork(env)
    seg = net.add_segment(latency=ConstantLatency(1.0), drop_probability=drop)
    client = net.add_host("c", seg)
    server = net.add_host("s", seg)
    ep = server.bind(9000, Echo())
    udp = DatagramTransport(net, retries=retries, retry_timeout_ms=20)

    def caller():
        try:
            reply = yield from udp.request(client, ep, "x")
        except TransportTimeout:
            return "timeout"
        return reply

    outcome = env.run(until=env.process(caller()))
    assert outcome == ("ok", "x") or outcome == "timeout"
    # Bounded attempts: elapsed time cannot exceed the retry budget
    # plus one full exchange.
    assert env.now <= (retries + 1) * 20 + 10
    env.run()  # drain stragglers cleanly


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=25, deadline=None)
def test_zero_loss_always_succeeds(seed):
    env = Environment(seed=seed)
    net = Internetwork(env)
    seg = net.add_segment(latency=ConstantLatency(1.0), drop_probability=0.0)
    client = net.add_host("c", seg)
    server = net.add_host("s", seg)
    ep = server.bind(9000, Echo())
    udp = DatagramTransport(net, retries=0, retry_timeout_ms=50)

    def caller():
        reply = yield from udp.request(client, ep, seed)
        return reply

    assert env.run(until=env.process(caller())) == ("ok", seed)


@given(st.floats(min_value=0.05, max_value=0.5), st.integers(min_value=0, max_value=2**31))
@settings(max_examples=20, deadline=None)
def test_retries_only_happen_under_loss_or_failure(drop, seed):
    env = Environment(seed=seed)
    net = Internetwork(env)
    seg = net.add_segment(latency=ConstantLatency(1.0), drop_probability=drop)
    client = net.add_host("c", seg)
    server = net.add_host("s", seg)
    ep = server.bind(9000, Echo())
    udp = DatagramTransport(net, retries=10, retry_timeout_ms=20)
    timeouts = []

    def caller():
        for _ in range(5):
            try:
                yield from udp.request(client, ep, "x")
            except TransportTimeout:
                # Losing all 11 attempts is ~4% per request at
                # drop=0.5 — a legitimate outcome, not a violation.
                timeouts.append(1)

    env.run(until=env.process(caller()))
    retransmits = env.stats.counters().get("net.udp.retransmits", 0)
    delivered = env.stats.counters().get("net.udp.delivered", 0)
    assert delivered >= 5 - len(timeouts)
    # Bounded by the retry budget, and a timed-out request must have
    # burned its whole budget first.
    assert 10 * len(timeouts) <= retransmits <= 5 * 10
