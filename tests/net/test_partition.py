"""Segment-level partition/heal: the deterministic drop rule."""

import pytest

from repro.net import DatagramTransport, Internetwork, Service
from repro.net.addresses import Endpoint
from repro.net.errors import TransportTimeout
from repro.sim import ConstantLatency, Environment


@pytest.fixture
def world():
    env = Environment(seed=13)
    net = Internetwork(env)
    seg = net.add_segment(latency=ConstantLatency(1.0, 0.0008))
    hosts = [net.add_host(f"h{i}", seg) for i in range(4)]
    udp = DatagramTransport(net, retries=0, retry_timeout_ms=50.0)
    return env, seg, hosts, udp


class Echo(Service):
    def __init__(self):
        self.seen = 0

    def handle(self, datagram, responder):
        self.seen += 1
        responder("echo", 8)
        return
        yield


def run(env, gen):
    return env.run(until=env.process(gen))


def test_partition_requires_two_groups(world):
    env, seg, hosts, udp = world
    with pytest.raises(ValueError):
        seg.partition(hosts)


def test_partition_rejects_double_assignment(world):
    env, seg, hosts, udp = world
    with pytest.raises(ValueError):
        seg.partition(hosts[:2], hosts[1:])


def test_rule_fires_only_across_sides(world):
    env, seg, hosts, udp = world
    seg.partition(hosts[:2], hosts[2:])
    assert seg.partitioned
    assert seg.crosses_partition(hosts[0].address, hosts[2].address)
    assert not seg.crosses_partition(hosts[0].address, hosts[1].address)
    assert seg.would_drop(hosts[0].address, hosts[3].address)
    assert not seg.would_drop(hosts[2].address, hosts[3].address)
    assert env.stats.counters().get("net.partition.drops", 0) == 1


def test_unassigned_hosts_keep_full_connectivity(world):
    env, seg, hosts, udp = world
    seg.partition(hosts[:1], hosts[1:2])  # h2, h3 in no group
    assert not seg.crosses_partition(hosts[0].address, hosts[2].address)
    assert not seg.crosses_partition(hosts[2].address, hosts[3].address)


def test_heal_restores_the_segment(world):
    env, seg, hosts, udp = world
    seg.partition(hosts[:2], hosts[2:])
    seg.heal()
    assert not seg.partitioned
    assert not seg.would_drop(hosts[0].address, hosts[2].address)


def test_requests_across_the_split_time_out(world):
    env, seg, hosts, udp = world
    echo = Echo()
    hosts[2].bind(5000, echo)
    seg.partition(hosts[:2], hosts[2:])
    with pytest.raises(TransportTimeout):
        run(env, udp.request(hosts[0], Endpoint(hosts[2].address, 5000), "hi", 8))
    assert echo.seen == 0
    seg.heal()
    reply = run(env, udp.request(hosts[0], Endpoint(hosts[2].address, 5000), "hi", 8))
    assert reply == "echo" and echo.seen == 1


def test_broadcast_stops_at_the_split(world):
    env, seg, hosts, udp = world
    same, far = Echo(), Echo()
    hosts[1].bind(5000, same)
    hosts[2].bind(5000, far)
    seg.partition(hosts[:2], hosts[2:])
    replies = run(env, udp.broadcast(hosts[0], 5000, "ping", 8, wait_ms=50.0))
    assert len(replies) == 1  # only the same-side listener
    assert same.seen == 1 and far.seen == 0
