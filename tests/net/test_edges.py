"""Edge coverage: messages, ethernet, misc net behaviours."""

import pytest

from repro.net import Datagram, Endpoint, Ethernet, Internetwork, NetworkAddress
from repro.sim import ConstantLatency, Environment


def test_datagram_validation_and_str():
    a = Endpoint(NetworkAddress("1.2.3.4"), 10)
    b = Endpoint(NetworkAddress("1.2.3.5"), 20)
    d = Datagram(a, b, "payload", 100)
    assert "1.2.3.4:10" in str(d) and "100 bytes" in str(d)
    with pytest.raises(ValueError):
        Datagram(a, b, "x", -1)
    d2 = Datagram(a, b, "x", 1)
    assert d2.msg_id > d.msg_id  # monotone ids


def test_ethernet_attach_detach():
    env = Environment()
    ether = Ethernet(env)
    net = Internetwork(env)
    seg = net.add_segment()
    host = net.add_host("h", seg)
    assert seg.carries(host.address)
    assert seg.host_for(host.address) is host
    seg.detach(host)
    assert not seg.carries(host.address)
    assert seg.host_for(host.address) is None
    seg.attach(host)
    with pytest.raises(ValueError):
        seg.attach(host)  # duplicate address


def test_ethernet_drop_probability_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Ethernet(env, drop_probability=1.0)
    with pytest.raises(ValueError):
        Ethernet(env, drop_probability=-0.1)
    quiet = Ethernet(env, drop_probability=0.0)
    assert not quiet.would_drop()


def test_ethernet_transmit_delay_scales_with_size():
    env = Environment(seed=8)
    ether = Ethernet(env, latency=ConstantLatency(1.0, per_byte_ms=0.001))
    small = Datagram.__new__(Datagram)
    small.size_bytes = 10
    big = Datagram.__new__(Datagram)
    big.size_bytes = 10_000
    assert ether.transmit_delay(big) > ether.transmit_delay(small)


def test_lossy_ethernet_drops_sometimes():
    env = Environment(seed=9)
    ether = Ethernet(env, drop_probability=0.5)
    outcomes = {ether.would_drop() for _ in range(100)}
    assert outcomes == {True, False}


def test_trace_format_renders_all_records():
    env = Environment()
    env.trace.enabled = True
    env.trace.emit("a", "first")
    env.trace.emit("b", "second", key="v")
    text = env.trace.format()
    assert "first" in text and "second" in text
    assert text.count("\n") == 1
