"""Transport semantics: delivery, request/response, failures."""

import pytest

from repro.net import (
    ConnectionRefused,
    DatagramTransport,
    HostDown,
    Internetwork,
    Service,
    StreamTransport,
    TransportTimeout,
)
from repro.net.transport import RemoteCallError
from repro.sim import ConstantLatency, Environment


class EchoService(Service):
    """Replies with the payload, uppercased if it's a string."""

    def __init__(self, work_ms=0.0):
        self.work_ms = work_ms
        self.received = []

    def handle(self, datagram, responder):
        self.received.append(datagram.payload)
        if self.work_ms:
            yield datagram.destination  # placeholder, replaced below
        responder(
            datagram.payload.upper()
            if isinstance(datagram.payload, str)
            else datagram.payload,
            size_bytes=64,
        )
        return
        yield


class SlowEchoService(Service):
    def __init__(self, env, work_ms):
        self.env = env
        self.work_ms = work_ms

    def handle(self, datagram, responder):
        yield self.env.timeout(self.work_ms)
        responder("slow-reply", 32)


class FaultyService(Service):
    def handle(self, datagram, responder):
        raise KeyError("no such record")
        yield  # pragma: no cover


def build_net(env=None, drop=0.0):
    env = env or Environment(seed=42)
    net = Internetwork(env)
    seg = net.add_segment(latency=ConstantLatency(5.0), drop_probability=drop)
    client = net.add_host("client", seg)
    server = net.add_host("server", seg)
    return env, net, client, server


def test_datagram_request_reply_roundtrip():
    env, net, client, server = build_net()
    svc = EchoService()
    ep = server.bind(9000, svc)
    udp = DatagramTransport(net)

    def caller():
        reply = yield from udp.request(client, ep, "hello", 100)
        return reply, env.now

    p = env.process(caller())
    reply, when = env.run(until=p)
    assert reply == "HELLO"
    assert svc.received == ["hello"]
    assert when == 10.0  # 5 ms each way


def test_datagram_to_unbound_port_times_out():
    env, net, client, server = build_net()
    udp = DatagramTransport(net, retries=1, retry_timeout_ms=50)

    def caller():
        from repro.net import Endpoint

        with pytest.raises(TransportTimeout):
            yield from udp.request(client, Endpoint(server.address, 1234), "x")
        return env.now

    p = env.process(caller())
    # 2 attempts x 50 ms timeout, plus wire delays
    assert env.run(until=p) >= 100.0
    assert env.stats.counters().get("net.udp.retransmits") == 2


def test_datagram_to_down_host_times_out_silently():
    env, net, client, server = build_net()
    ep = server.bind(9000, EchoService())
    server.crash()
    udp = DatagramTransport(net, retries=0, retry_timeout_ms=30)

    def caller():
        with pytest.raises(TransportTimeout):
            yield from udp.request(client, ep, "x")
        return "done"

    p = env.process(caller())
    assert env.run(until=p) == "done"


def test_datagram_retransmit_succeeds_after_restart():
    env, net, client, server = build_net()
    ep = server.bind(9000, EchoService())
    server.crash()
    udp = DatagramTransport(net, retries=3, retry_timeout_ms=40)

    def resurrect():
        yield env.timeout(60)
        server.restart()

    def caller():
        reply = yield from udp.request(client, ep, "back")
        return reply

    env.process(resurrect())
    p = env.process(caller())
    assert env.run(until=p) == "BACK"


def test_datagram_loss_is_retried():
    # With 40% loss the 3-retry default should still usually succeed.
    env, net, client, server = build_net(drop=0.4)
    ep = server.bind(9000, EchoService())
    udp = DatagramTransport(net, retries=8, retry_timeout_ms=30)

    def caller():
        return (yield from udp.request(client, ep, "lossy"))

    p = env.process(caller())
    assert env.run(until=p) == "LOSSY"


def test_stream_request_reply_roundtrip():
    env, net, client, server = build_net()
    ep = server.bind(9000, EchoService())
    tcp = StreamTransport(net)

    def caller():
        reply = yield from tcp.request(client, ep, "hi", 50)
        return reply, env.now

    p = env.process(caller())
    reply, when = env.run(until=p)
    assert reply == "HI"
    # connect RTT (10) + request (5) + reply (5)
    assert when == 20.0


def test_stream_to_down_host_raises_hostdown():
    env, net, client, server = build_net()
    ep = server.bind(9000, EchoService())
    server.crash()
    tcp = StreamTransport(net)

    def caller():
        with pytest.raises(HostDown):
            yield from tcp.request(client, ep, "x")
        return "done"

    p = env.process(caller())
    assert env.run(until=p) == "done"


def test_stream_to_unbound_port_refused():
    env, net, client, server = build_net()
    tcp = StreamTransport(net)

    def caller():
        from repro.net import Endpoint

        with pytest.raises(ConnectionRefused):
            yield from tcp.request(client, Endpoint(server.address, 77), "x")
        return "done"

    p = env.process(caller())
    assert env.run(until=p) == "done"


def test_remote_exception_carried_to_caller():
    env, net, client, server = build_net()
    ep = server.bind(9000, FaultyService())
    tcp = StreamTransport(net)

    def caller():
        try:
            yield from tcp.request(client, ep, "x")
        except RemoteCallError as err:
            return type(err.remote_exception).__name__
        return "no-error"

    p = env.process(caller())
    assert env.run(until=p) == "KeyError"


def test_slow_service_delays_reply():
    env, net, client, server = build_net()
    ep = server.bind(9000, SlowEchoService(env, work_ms=100))
    tcp = StreamTransport(net)

    def caller():
        reply = yield from tcp.request(client, ep, "x")
        return reply, env.now

    p = env.process(caller())
    reply, when = env.run(until=p)
    assert reply == "slow-reply"
    assert when == 120.0  # 10 connect + 5 + 100 work + 5


def test_stream_timeout_on_very_slow_service():
    env, net, client, server = build_net()
    ep = server.bind(9000, SlowEchoService(env, work_ms=10_000))
    tcp = StreamTransport(net)

    def caller():
        with pytest.raises(TransportTimeout):
            yield from tcp.request(client, ep, "x", timeout_ms=200)
        return env.now

    p = env.process(caller())
    assert env.run(until=p) == pytest.approx(215.0)
    # Let the slow service finish; its late reply must be ignored quietly.
    env.run()


def test_oneway_send_delivers_without_reply():
    env, net, client, server = build_net()
    svc = EchoService()
    ep = server.bind(9000, svc)
    udp = DatagramTransport(net)

    def caller():
        yield from udp.send(client, ep, "fire-and-forget", 10)

    env.process(caller())
    env.run()
    assert svc.received == ["fire-and-forget"]


def test_send_from_down_host_rejected():
    env, net, client, server = build_net()
    ep = server.bind(9000, EchoService())
    client.crash()
    udp = DatagramTransport(net)

    def caller():
        with pytest.raises(HostDown):
            yield from udp.send(client, ep, "x")
        return "done"

    p = env.process(caller())
    assert env.run(until=p) == "done"


def test_larger_payload_takes_longer():
    env = Environment(seed=1)
    net = Internetwork(env)
    seg = net.add_segment(latency=ConstantLatency(1.0, per_byte_ms=0.01))
    client = net.add_host("c", seg)
    server = net.add_host("s", seg)
    ep = server.bind(9000, EchoService())
    udp = DatagramTransport(net)

    def timed(sz):
        def caller():
            start = env.now
            yield from udp.request(client, ep, "x", sz)
            return env.now - start

        return env.run(until=env.process(caller()))

    assert timed(1000) > timed(10)
