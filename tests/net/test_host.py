"""Host binding, liveness, ephemeral ports."""

import pytest

from repro.net import Host, NetworkAddress, PortInUse, Service
from repro.sim import Environment


class NullService(Service):
    def handle(self, datagram, responder):
        return
        yield


def make_host(env=None, **kwargs):
    env = env or Environment()
    return Host(env, "fiji", NetworkAddress("128.95.1.4"), **kwargs)


def test_host_defaults():
    host = make_host()
    assert host.is_up
    assert host.system_type == "unix"
    assert repr(host).startswith("<Host fiji")


def test_bind_and_lookup():
    host = make_host()
    svc = NullService()
    ep = host.bind(53, svc)
    assert ep.port == 53 and ep.address == host.address
    assert host.service_at(53) is svc
    assert host.service_at(54) is None


def test_double_bind_rejected():
    host = make_host()
    host.bind(53, NullService())
    with pytest.raises(PortInUse):
        host.bind(53, NullService())


def test_bind_requires_service_instance():
    host = make_host()
    with pytest.raises(TypeError):
        host.bind(53, object())  # type: ignore[arg-type]


def test_unbind():
    host = make_host()
    host.bind(53, NullService())
    host.unbind(53)
    assert host.service_at(53) is None
    with pytest.raises(KeyError):
        host.unbind(53)


def test_crash_and_restart_keep_services():
    host = make_host()
    host.bind(53, NullService())
    host.crash()
    assert not host.is_up
    host.restart()
    assert host.is_up
    assert host.service_at(53) is not None


def test_ephemeral_endpoints_unique_until_wrap():
    host = make_host()
    first = host.ephemeral_endpoint()
    second = host.ephemeral_endpoint()
    assert first.port != second.port
    assert first.address == host.address


def test_cpu_speed_configurable():
    env = Environment()
    slow = Host(env, "tek", NetworkAddress("128.95.1.9"), cpu_speed=0.5)
    assert slow.cpu.speed_factor == 0.5
    assert slow.disk.access_ms == 30.0
