"""Address and endpoint validation."""

import pytest
from hypothesis import given, strategies as st

from repro.net import Endpoint, NetworkAddress
from repro.net.addresses import WELL_KNOWN_PORTS, AddressAllocator


def test_valid_address_roundtrip():
    addr = NetworkAddress("128.95.1.4")
    assert str(addr) == "128.95.1.4"
    assert addr.octets == (128, 95, 1, 4)
    assert addr.network == (128, 95, 1)


@pytest.mark.parametrize(
    "bad",
    ["", "1.2.3", "1.2.3.4.5", "a.b.c.d", "256.1.1.1", "1.2.3.-1", "1.2.3.999"],
)
def test_invalid_addresses_rejected(bad):
    with pytest.raises(ValueError):
        NetworkAddress(bad)


@given(st.tuples(*[st.integers(min_value=0, max_value=255)] * 4))
def test_any_octet_quad_is_valid(quad):
    addr = NetworkAddress(".".join(str(o) for o in quad))
    assert addr.octets == quad


def test_addresses_are_hashable_and_ordered():
    a = NetworkAddress("128.95.1.1")
    b = NetworkAddress("128.95.1.1")
    assert a == b and hash(a) == hash(b)
    assert NetworkAddress("1.1.1.1") < NetworkAddress("2.0.0.0")


def test_endpoint_validation():
    addr = NetworkAddress("10.0.0.1")
    ep = Endpoint(addr, 53)
    assert str(ep) == "10.0.0.1:53"
    with pytest.raises(ValueError):
        Endpoint(addr, 0)
    with pytest.raises(ValueError):
        Endpoint(addr, 70000)


def test_allocator_unique_addresses():
    alloc = AddressAllocator("10.1.2")
    seen = {str(alloc.allocate()) for _ in range(254)}
    assert len(seen) == 254
    with pytest.raises(RuntimeError):
        alloc.allocate()


def test_allocator_bad_prefix():
    with pytest.raises(ValueError):
        AddressAllocator("10.1")
    with pytest.raises(ValueError):
        AddressAllocator("10.1.999")


def test_well_known_ports_distinct():
    values = list(WELL_KNOWN_PORTS.values())
    assert len(values) == len(set(values))
