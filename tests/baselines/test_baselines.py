"""Baseline binding schemes: costs and failure modes."""

import pytest

from repro.baselines import LocalFileBinder, ReregistrationBinder
from repro.bind import BindResolver
from repro.clearinghouse import ClearinghouseClient
from repro.localfiles import BindingFileEntry, LocalBindingFile, Replicator
from repro.workloads import build_testbed
from repro.workloads.scenarios import CREDENTIALS


def run(env, gen):
    return env.run(until=env.process(gen))


@pytest.fixture
def testbed():
    return build_testbed(seed=13)


def make_files(testbed, hosts=None):
    hosts = hosts or [testbed.client, testbed.fiji, testbed.nsm_host]
    files = [LocalBindingFile(h, testbed.calibration) for h in hosts]
    replicator = Replicator(testbed.internet, testbed.udp, files)
    return files, replicator


ENTRY = BindingFileEntry(
    service="DesiredService",
    host_name="fiji.cs.washington.edu",
    address="",  # filled per-testbed below
    port=9999,
)


def entry_for(testbed):
    return BindingFileEntry(
        service="DesiredService",
        host_name="fiji.cs.washington.edu",
        address=str(testbed.fiji.address),
        port=9999,
    )


# ----------------------------------------------------------------------
# Local-file baseline
# ----------------------------------------------------------------------
def test_localfile_binding_costs_200ms(testbed):
    """'Binding using this scheme took 200 msec.'"""
    env = testbed.env
    files, replicator = make_files(testbed)
    run(env, replicator.publish(testbed.client, entry_for(testbed)))
    binder = LocalFileBinder(testbed.client, files[0], testbed.calibration)
    start = env.now
    binding = run(
        env, binder.import_binding("DesiredService", "fiji.cs.washington.edu")
    )
    assert env.now - start == pytest.approx(200.0, rel=0.02)
    assert binding.endpoint.port == 9999


def test_localfile_unknown_service(testbed):
    files, _ = make_files(testbed)
    binder = LocalFileBinder(testbed.client, files[0])

    def scenario():
        with pytest.raises(KeyError):
            yield from binder.import_binding("Ghost", "fiji.cs.washington.edu")
        return "done"

    assert run(testbed.env, scenario()) == "done"


def test_localfile_replication_updates_all_replicas(testbed):
    env = testbed.env
    files, replicator = make_files(testbed)
    updated = run(env, replicator.publish(testbed.client, entry_for(testbed)))
    assert updated == 3
    assert all(len(f) == 1 for f in files)


def test_localfile_stale_replica_on_down_host(testbed):
    """The consistency problem: a down host misses the update."""
    env = testbed.env
    files, replicator = make_files(testbed)
    testbed.nsm_host.crash()
    updated = run(env, replicator.publish(testbed.client, entry_for(testbed)))
    assert updated == 2
    stale = [f for f in files if f.host is testbed.nsm_host][0]
    assert len(stale) == 0  # permanently stale until re-pushed
    testbed.nsm_host.restart()
    assert len(stale) == 0


def test_localfile_replication_cost_scales_with_hosts(testbed):
    """The reregistration cost 'continues without end' and grows with
    the system: publishing to 2x the replicas costs ~2x."""
    env = testbed.env
    extra = [testbed.internet.add_host(f"wk{i}") for i in range(6)]
    small_files, small_rep = make_files(testbed, [testbed.client, extra[0]])
    big_files, big_rep = make_files(testbed, [testbed.client] + extra)
    start = env.now
    run(env, small_rep.publish(testbed.client, entry_for(testbed)))
    small_cost = env.now - start
    start = env.now
    run(env, big_rep.publish(testbed.client, entry_for(testbed)))
    big_cost = env.now - start
    assert big_cost > 3 * small_cost


def test_binder_requires_local_replica(testbed):
    files, _ = make_files(testbed)
    with pytest.raises(ValueError):
        LocalFileBinder(testbed.client, files[1])


# ----------------------------------------------------------------------
# Reregistration baseline
# ----------------------------------------------------------------------
def ch_binder(testbed):
    client = ClearinghouseClient(
        testbed.client, testbed.tcp, testbed.ch_endpoint, CREDENTIALS
    )
    return ReregistrationBinder(
        testbed.client, client, "bindings", testbed.calibration
    )


def test_ch_reregistration_binding_costs_166ms(testbed):
    """'binding took 166 msec' on the Clearinghouse-based scheme."""
    env = testbed.env
    binder = ch_binder(testbed)
    run(
        env,
        binder.reregister(
            "DesiredService",
            "fiji.cs.washington.edu",
            str(testbed.fiji.address),
            9999,
        ),
    )
    start = env.now
    binding = run(
        env, binder.import_binding("DesiredService", "fiji.cs.washington.edu")
    )
    assert env.now - start == pytest.approx(166.0, rel=0.02)
    assert binding.endpoint.port == 9999


def test_bind_backed_reregistration_faster(testbed):
    """The hypothetical 'use BIND instead' variant beats the CH one."""
    env = testbed.env
    resolver = BindResolver(
        testbed.client,
        testbed.udp,
        testbed.meta_endpoint,
        calibration=testbed.calibration,
    )
    binder = ReregistrationBinder(testbed.client, resolver, "hns")
    run(
        env,
        binder.reregister(
            "DesiredService",
            "fiji.cs.washington.edu",
            str(testbed.fiji.address),
            9999,
            suite="sunrpc",
        ),
    )
    start = env.now
    binding = run(
        env, binder.import_binding("DesiredService", "fiji.cs.washington.edu")
    )
    bind_cost = env.now - start
    assert binding.endpoint.port == 9999
    assert bind_cost < 80  # far cheaper than the 166 ms CH variant


def test_rereg_unknown_binding(testbed):
    binder = ch_binder(testbed)

    def scenario():
        with pytest.raises(KeyError):
            yield from binder.import_binding("Ghost", "fiji.cs.washington.edu")
        return "done"

    assert run(testbed.env, scenario()) == "done"


def test_rereg_staleness_until_repush(testbed):
    """After a native change, the reregistered copy stays wrong until
    someone reregisters — the consistency cost of the design."""
    env = testbed.env
    binder = ch_binder(testbed)
    run(
        env,
        binder.reregister(
            "DesiredService", "fiji.cs.washington.edu", "10.0.0.1", 1111
        ),
    )
    # The service actually moves (native truth changes)...
    real_address = str(testbed.fiji.address)
    binding = run(
        env, binder.import_binding("DesiredService", "fiji.cs.washington.edu")
    )
    assert str(binding.endpoint.address) == "10.0.0.1"  # stale!
    # ...and only a re-push fixes it.
    run(
        env,
        binder.reregister(
            "DesiredService", "fiji.cs.washington.edu", real_address, 9999
        ),
    )
    binding = run(
        env, binder.import_binding("DesiredService", "fiji.cs.washington.edu")
    )
    assert str(binding.endpoint.address) == real_address
