"""Workload generation: Zipf locality and query streams."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import HNSName
from repro.sim import Environment
from repro.workloads import QueryWorkload, ZipfDistribution


# ----------------------------------------------------------------------
# Zipf
# ----------------------------------------------------------------------
def test_zipf_validation():
    with pytest.raises(ValueError):
        ZipfDistribution(0)
    with pytest.raises(ValueError):
        ZipfDistribution(5, s=-1)


def test_zipf_probabilities_sum_to_one():
    z = ZipfDistribution(10, s=1.2)
    assert sum(z.probability(r) for r in range(10)) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        z.probability(10)


def test_zipf_rank_zero_most_popular():
    z = ZipfDistribution(20, s=1.0)
    probs = [z.probability(r) for r in range(20)]
    assert probs == sorted(probs, reverse=True)
    assert probs[0] > 3 * probs[9]


def test_zipf_s_zero_is_uniform():
    z = ZipfDistribution(4, s=0.0)
    for r in range(4):
        assert z.probability(r) == pytest.approx(0.25)


def test_zipf_sampling_matches_distribution():
    env = Environment(seed=4)
    rng = env.rng.stream("z")
    z = ZipfDistribution(5, s=1.0)
    counts = [0] * 5
    for _ in range(5000):
        counts[z.sample(rng)] += 1
    assert counts[0] > counts[1] > counts[4]


def test_zipf_choose():
    env = Environment(seed=4)
    z = ZipfDistribution(3)
    assert z.choose(env.rng.stream("c"), ["a", "b", "c"]) in {"a", "b", "c"}
    with pytest.raises(ValueError):
        z.choose(env.rng.stream("c"), ["a"])


@given(st.integers(min_value=1, max_value=50), st.floats(min_value=0, max_value=3))
@settings(max_examples=30, deadline=None)
def test_zipf_samples_in_range(n, s):
    env = Environment(seed=1)
    z = ZipfDistribution(n, s)
    rng = env.rng.stream("p")
    assert all(0 <= z.sample(rng) < n for _ in range(50))


# ----------------------------------------------------------------------
# QueryWorkload
# ----------------------------------------------------------------------
def population(k=5):
    return [
        (HNSName("BIND-cs", f"host{i}.cs.washington.edu"), "HostAddress", {})
        for i in range(k)
    ]


def test_workload_validation():
    env = Environment()
    with pytest.raises(ValueError):
        QueryWorkload(env, [])
    with pytest.raises(ValueError):
        QueryWorkload(env, population(), mean_interarrival_ms=0)
    wl = QueryWorkload(env, population())
    with pytest.raises(ValueError):
        wl.generate(-1)


def test_workload_generates_ordered_events():
    env = Environment(seed=9)
    wl = QueryWorkload(env, population(), mean_interarrival_ms=100)
    events = wl.generate(50)
    assert len(events) == 50
    times = [e.at_ms for e in events]
    assert times == sorted(times)
    assert all(e.query_class == "HostAddress" for e in events)


def test_workload_is_deterministic_per_seed():
    def gen(seed):
        env = Environment(seed=seed)
        wl = QueryWorkload(env, population())
        return [(e.at_ms, str(e.hns_name)) for e in wl.generate(20)]

    assert gen(1) == gen(1)
    assert gen(1) != gen(2)


def test_workload_locality():
    """With strong Zipf, few distinct names dominate (cache-friendly)."""
    env = Environment(seed=3)
    wl = QueryWorkload(env, population(20), zipf_s=1.5)
    events = wl.generate(200)
    assert wl.unique_fraction(events) < 0.2
    assert wl.unique_fraction([]) == 0.0


def test_uniform_workload_has_higher_unique_fraction():
    env = Environment(seed=3)
    local = QueryWorkload(env, population(50), zipf_s=1.5, stream="a")
    uniform = QueryWorkload(env, population(50), zipf_s=0.0, stream="b")
    assert uniform.unique_fraction(uniform.generate(100)) > local.unique_fraction(
        local.generate(100)
    )
