"""Domain names, resource records, zones."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bind import DomainName, NameNotFound, ResourceRecord, RRType, Zone


# ----------------------------------------------------------------------
# DomainName
# ----------------------------------------------------------------------
def test_name_parsing_and_str():
    n = DomainName("Fiji.CS.Washington.EDU")
    assert str(n) == "fiji.cs.washington.edu"
    assert n.labels == ("fiji", "cs", "washington", "edu")


def test_name_case_insensitive_equality():
    assert DomainName("A.B.C") == DomainName("a.b.c")
    assert hash(DomainName("A.B")) == hash(DomainName("a.b"))
    assert DomainName("a.b") == "A.b"


def test_root_name():
    root = DomainName("")
    assert root.is_root
    assert str(root) == "."
    with pytest.raises(ValueError):
        root.parent


def test_parent_and_child():
    n = DomainName("fiji.cs.washington.edu")
    assert n.parent == DomainName("cs.washington.edu")
    assert DomainName("cs.washington.edu").child("fiji") == n


def test_subdomain_checks():
    zone = DomainName("cs.washington.edu")
    assert DomainName("fiji.cs.washington.edu").is_subdomain_of(zone)
    assert zone.is_subdomain_of(zone)
    assert not DomainName("ee.washington.edu").is_subdomain_of(zone)
    assert zone.is_subdomain_of(DomainName(""))  # everything under root


def test_relative_to():
    zone = DomainName("cs.washington.edu")
    assert DomainName("fiji.cs.washington.edu").relative_to(zone) == "fiji"
    assert zone.relative_to(zone) == "@"
    with pytest.raises(ValueError):
        DomainName("mit.edu").relative_to(zone)


@pytest.mark.parametrize("bad", ["a..b", ".a.", "a b.c", "x" * 64 + ".com"])
def test_invalid_names(bad):
    with pytest.raises(ValueError):
        DomainName(bad)


def test_trailing_dot_tolerated():
    assert DomainName("a.b.") == DomainName("a.b")


@given(
    st.lists(
        st.text(
            alphabet=st.characters(
                whitelist_categories=("Ll", "Nd"), max_codepoint=127
            ),
            min_size=1,
            max_size=10,
        ),
        min_size=1,
        max_size=5,
    )
)
@settings(max_examples=50, deadline=None)
def test_name_roundtrip_property(labels):
    name = DomainName(".".join(labels))
    assert DomainName(str(name)) == name
    assert name.is_subdomain_of(name.parent)


# ----------------------------------------------------------------------
# ResourceRecord
# ----------------------------------------------------------------------
def test_a_record_roundtrip():
    r = ResourceRecord.a_record("fiji.cs.washington.edu", "128.95.1.4", ttl=1000)
    assert r.rtype is RRType.A
    assert r.address == "128.95.1.4"
    assert r.ttl == 1000


def test_text_record():
    r = ResourceRecord.text_record("x.hns", "BIND", rtype=RRType.UNSPEC)
    assert r.text == "BIND"
    assert r.rtype is RRType.UNSPEC


def test_record_validation():
    with pytest.raises(ValueError):
        ResourceRecord(DomainName("a"), RRType.A, -1, b"")
    with pytest.raises(ValueError):
        ResourceRecord(DomainName("a"), RRType.TXT, 0, b"x" * 257)
    with pytest.raises(TypeError):
        ResourceRecord(DomainName("a"), "A", 0, b"")  # type: ignore[arg-type]
    with pytest.raises(ValueError):
        ResourceRecord.a_record("a", "1.2.3")
    with pytest.raises(ValueError):
        ResourceRecord.a_record("a", "1.2.3.4").__class__(
            DomainName("a"), RRType.TXT, 0, b"x"
        ).address  # not an A record


def test_wire_size_includes_name_and_data():
    small = ResourceRecord.text_record("a.b", "x")
    large = ResourceRecord.text_record("a.b", "x" * 100)
    assert large.wire_size() - small.wire_size() == 99


# ----------------------------------------------------------------------
# Zone
# ----------------------------------------------------------------------
def make_zone():
    zone = Zone("cs.washington.edu")
    zone.add(ResourceRecord.a_record("fiji.cs.washington.edu", "128.95.1.4"))
    zone.add(ResourceRecord.a_record("june.cs.washington.edu", "128.95.1.5"))
    return zone


def test_zone_lookup():
    zone = make_zone()
    records = zone.lookup("fiji.cs.washington.edu", RRType.A)
    assert len(records) == 1
    assert records[0].address == "128.95.1.4"


def test_zone_lookup_missing_raises():
    zone = make_zone()
    with pytest.raises(NameNotFound):
        zone.lookup("nohost.cs.washington.edu", RRType.A)
    with pytest.raises(NameNotFound):
        zone.lookup("fiji.cs.washington.edu", RRType.TXT)


def test_zone_rejects_out_of_zone_records():
    zone = make_zone()
    with pytest.raises(ValueError):
        zone.add(ResourceRecord.a_record("x.mit.edu", "1.2.3.4"))


def test_zone_serial_bumps_on_changes():
    zone = make_zone()
    s0 = zone.serial
    zone.add(ResourceRecord.a_record("new.cs.washington.edu", "128.95.1.9"))
    assert zone.serial == s0 + 1
    zone.remove("new.cs.washington.edu", RRType.A)
    assert zone.serial == s0 + 2
    # Removing something absent does not bump.
    zone.remove("new.cs.washington.edu", RRType.A)
    assert zone.serial == s0 + 2


def test_zone_multiple_records_per_name():
    zone = Zone("gw.net")
    for i in range(6):
        zone.add(ResourceRecord.a_record("gateway.gw.net", f"10.0.0.{i + 1}"))
    records = zone.lookup("gateway.gw.net", RRType.A)
    assert len(records) == 6


def test_zone_duplicate_data_refreshes_not_duplicates():
    zone = Zone("z")
    zone.add(ResourceRecord.a_record("h.z", "1.2.3.4", ttl=100))
    zone.add(ResourceRecord.a_record("h.z", "1.2.3.4", ttl=999))
    records = zone.lookup("h.z", RRType.A)
    assert len(records) == 1
    assert records[0].ttl == 999


def test_zone_replace():
    zone = make_zone()
    new = [ResourceRecord.a_record("fiji.cs.washington.edu", "10.0.0.1")]
    zone.replace("fiji.cs.washington.edu", RRType.A, new)
    assert zone.lookup("fiji.cs.washington.edu", RRType.A)[0].address == "10.0.0.1"
    zone.replace("fiji.cs.washington.edu", RRType.A, [])
    with pytest.raises(NameNotFound):
        zone.lookup("fiji.cs.washington.edu", RRType.A)


def test_zone_replace_validates_ownership():
    zone = make_zone()
    with pytest.raises(ValueError):
        zone.replace(
            "fiji.cs.washington.edu",
            RRType.A,
            [ResourceRecord.a_record("june.cs.washington.edu", "1.1.1.1")],
        )


def test_zone_all_records_stable_order():
    zone = make_zone()
    assert zone.all_records() == zone.all_records()
    assert zone.record_count == 2
    assert zone.wire_size() > 0
    assert {str(n) for n in zone.names()} == {
        "fiji.cs.washington.edu",
        "june.cs.washington.edu",
    }


@given(st.lists(st.integers(min_value=1, max_value=254), min_size=1, max_size=30, unique=True))
@settings(max_examples=30, deadline=None)
def test_zone_count_matches_adds(hosts):
    zone = Zone("z")
    for h in hosts:
        zone.add(ResourceRecord.a_record(f"h{h}.z", f"10.0.0.{h}"))
    assert zone.record_count == len(hosts)
    assert len(zone.all_records()) == len(hosts)
