"""The resolver fast path: coalescing, refresh-ahead, batched queries."""

import pytest

from repro.bind import (
    BindResolver,
    NameNotFound,
    ResourceRecord,
    RRType,
    Zone,
)
from repro.bind.messages import (
    STATUS_NXDOMAIN,
    STATUS_OK,
    STATUS_SERVFAIL,
    BatchQuestion,
    meta_field,
    substitute_label,
)
from repro.bind.names import DomainName
from repro.bind import ResolverCache
from repro.resolution import FastPathPolicy


def make_resolver(env, client, transport, endpoint, **kwargs):
    """A resolver with a cache, as every caching client configures it."""
    kwargs.setdefault("cache", ResolverCache(env, name="test-cache"))
    return BindResolver(client, transport, endpoint, **kwargs)


def run(env, gen):
    return env.run(until=env.process(gen))


def idle(env, ms):
    def sleeper():
        yield env.timeout(ms)

    run(env, sleeper())


# ----------------------------------------------------------------------
# Policy object
# ----------------------------------------------------------------------
def test_policy_validates_fraction():
    with pytest.raises(ValueError):
        FastPathPolicy(refresh_ahead_fraction=1.5)
    with pytest.raises(ValueError):
        FastPathPolicy(refresh_ahead_fraction=-0.1)


def test_disabled_policy_turns_everything_off():
    policy = FastPathPolicy.disabled()
    assert not policy.coalesce
    assert policy.refresh_ahead_fraction == 0.0
    assert not policy.batch_meta_lookups


# ----------------------------------------------------------------------
# Single-flight coalescing
# ----------------------------------------------------------------------
def test_thundering_herd_coalesces_to_one_query(deployment):
    """K concurrent cold lookups of one name: one server query with
    coalescing, K without — the thundering-herd regression test."""
    env, net, transport, client, server, endpoint = deployment
    K = 8
    for fast_path, expected_queries in (
        (FastPathPolicy(), 1),
        (FastPathPolicy.disabled(), K),
    ):
        resolver = make_resolver(
            env, client, transport, endpoint, fast_path=fast_path
        )
        before = env.stats.counter(f"bind.{server.name}.queries").value
        results = []

        def one_lookup():
            records = yield from resolver.lookup("fiji.cs.washington.edu")
            results.append(records)

        for _ in range(K):
            env.process(one_lookup())
        idle(env, 5_000)
        assert len(results) == K
        assert all(r[0].address == "128.95.1.4" for r in results)
        queries = env.stats.counter(f"bind.{server.name}.queries").value - before
        assert queries == expected_queries
        if fast_path.coalesce:
            assert resolver.cache.coalesced == K - 1
            assert (
                env.stats.counter(f"cache.{resolver.cache.name}.coalesced").value
                == K - 1
            )


def test_leader_failure_propagates_to_followers(deployment):
    """A coalesced miss that fails delivers the same classified error to
    every parked follower — nobody hangs, nobody retries separately."""
    env, net, transport, client, server, endpoint = deployment
    resolver = BindResolver(
        client, transport, endpoint, fast_path=FastPathPolicy()
    )
    K = 5
    outcomes = []

    def one_lookup():
        try:
            yield from resolver.lookup("nohost.cs.washington.edu")
            outcomes.append("ok")
        except NameNotFound:
            outcomes.append("not-found")

    before = env.stats.counter(f"bind.{server.name}.queries").value
    for _ in range(K):
        env.process(one_lookup())
    idle(env, 5_000)
    assert outcomes == ["not-found"] * K
    assert env.stats.counter(f"bind.{server.name}.queries").value - before == 1


# ----------------------------------------------------------------------
# Refresh-ahead
# ----------------------------------------------------------------------
@pytest.fixture
def short_ttl_deployment(deployment):
    """The shared deployment plus a record with a 1-second TTL."""
    env, net, transport, client, server, endpoint = deployment
    zone = server.zone_for(DomainName("short.cs.washington.edu"))
    zone.add(
        ResourceRecord.a_record("short.cs.washington.edu", "128.95.1.99", ttl=1_000)
    )
    return deployment


def test_refresh_ahead_renews_hot_entry(short_ttl_deployment):
    env, net, transport, client, server, endpoint = short_ttl_deployment
    resolver = make_resolver(
        env,
        client,
        transport,
        endpoint,
        fast_path=FastPathPolicy(refresh_ahead_fraction=0.3),
    )
    run(env, resolver.lookup("short.cs.washington.edu"))  # cold fill
    idle(env, 800)  # inside the last 30% of the 1 s TTL
    records = run(env, resolver.lookup("short.cs.washington.edu"))
    assert records[0].address == "128.95.1.99"
    assert resolver.cache.refreshes == 1
    idle(env, 600)  # deferral (<=100 ms) + fetch land; original TTL passes
    stats = env.stats
    assert stats.counter(f"bind.{resolver.name}.remote_lookups").value == 2
    # The entry was renewed in the background: still a cache hit well
    # past the original expiry.
    hits_before = resolver.cache.hits
    run(env, resolver.lookup("short.cs.washington.edu"))
    assert resolver.cache.hits == hits_before + 1


def test_refresh_failure_is_silent(short_ttl_deployment):
    env, net, transport, client, server, endpoint = short_ttl_deployment
    resolver = make_resolver(
        env,
        client,
        transport,
        endpoint,
        fast_path=FastPathPolicy(refresh_ahead_fraction=0.3),
    )
    run(env, resolver.lookup("short.cs.washington.edu"))
    server.host.crash()
    idle(env, 800)
    # The triggering hit is served from cache and never sees the renewal
    # failing behind it.
    records = run(env, resolver.lookup("short.cs.washington.edu"))
    assert records[0].address == "128.95.1.99"
    idle(env, 30_000)  # let the renewal time out against the dead server
    assert (
        env.stats.counter(f"bind.{resolver.name}.refresh_failures").value == 1
    )
    # The expired entry is still resident for the serve-stale ladder.
    assert resolver.cache.stale_entry(
        ("short.cs.washington.edu", RRType.A.value), window_ms=3_600_000
    ) is not None


def test_disabled_policy_never_refreshes(short_ttl_deployment):
    env, net, transport, client, server, endpoint = short_ttl_deployment
    resolver = make_resolver(
        env, client, transport, endpoint, fast_path=FastPathPolicy.disabled()
    )
    run(env, resolver.lookup("short.cs.washington.edu"))
    idle(env, 900)
    run(env, resolver.lookup("short.cs.washington.edu"))
    idle(env, 2_000)
    assert resolver.cache.refreshes == 0
    assert env.stats.counter(f"bind.{resolver.name}.remote_lookups").value == 1


# ----------------------------------------------------------------------
# Batched (chained) queries
# ----------------------------------------------------------------------
@pytest.fixture
def meta_style_deployment(deployment):
    """A second server carrying UNSPEC key=value records, HNS-style."""
    env, net, transport, client, server, endpoint = deployment
    zone = Zone("hns")
    zone.add(
        ResourceRecord("cs.ctx.hns", RRType.UNSPEC, 3_600_000, b"ns=BIND-cs")
    )
    zone.add(
        ResourceRecord(
            "Binding.bind-cs.q.hns", RRType.UNSPEC, 3_600_000, b"nsm=b-nsm"
        )
    )
    zone.add(
        ResourceRecord(
            "b-nsm.nsm.hns", RRType.UNSPEC, 3_600_000, b"host=fiji;port=7100"
        )
    )
    server.add_zone(zone)
    return deployment


def test_batch_chained_lookup_one_round_trip(meta_style_deployment):
    env, net, transport, client, server, endpoint = meta_style_deployment
    resolver = make_resolver(
        env, client, transport, endpoint, fast_path=FastPathPolicy()
    )
    questions = [
        BatchQuestion("cs.ctx.hns", RRType.UNSPEC),
        BatchQuestion(
            "Binding.*.q.hns", RRType.UNSPEC, chain_from=0, chain_field="ns"
        ),
        BatchQuestion(
            "*.nsm.hns", RRType.UNSPEC, chain_from=1, chain_field="nsm"
        ),
    ]
    before_requests = env.stats.counter(f"bind.{server.name}.requests").value
    answers = run(env, resolver.lookup_batch(questions))
    assert [a.status for a in answers] == [STATUS_OK] * 3
    assert answers[2].records[0].data == b"host=fiji;port=7100"
    # One datagram exchange, three database walks.
    assert (
        env.stats.counter(f"bind.{server.name}.requests").value
        - before_requests
        == 1
    )
    assert env.stats.counter(f"bind.{server.name}.batches").value == 1
    # Every answer landed in the cache under its own canonical owner.
    for owner in ("cs.ctx.hns", "binding.bind-cs.q.hns", "b-nsm.nsm.hns"):
        entry, _ = resolver.cache.probe((owner, RRType.UNSPEC.value))
        assert entry is not None, owner


def test_batch_broken_chain_yields_servfail_slot(meta_style_deployment):
    env, net, transport, client, server, endpoint = meta_style_deployment
    resolver = BindResolver(client, transport, endpoint)
    questions = [
        BatchQuestion("nope.ctx.hns", RRType.UNSPEC),
        BatchQuestion(
            "Binding.*.q.hns", RRType.UNSPEC, chain_from=0, chain_field="ns"
        ),
    ]
    answers = run(env, resolver.lookup_batch(questions))
    assert answers[0].status == STATUS_NXDOMAIN
    assert answers[1].status == STATUS_SERVFAIL


def test_batch_bad_chain_field_yields_servfail_slot(meta_style_deployment):
    env, net, transport, client, server, endpoint = meta_style_deployment
    resolver = BindResolver(client, transport, endpoint)
    questions = [
        BatchQuestion("cs.ctx.hns", RRType.UNSPEC),
        BatchQuestion(
            "Binding.*.q.hns",
            RRType.UNSPEC,
            chain_from=0,
            chain_field="no-such-field",
        ),
    ]
    answers = run(env, resolver.lookup_batch(questions))
    assert answers[0].status == STATUS_OK
    assert answers[1].status == STATUS_SERVFAIL


def test_batch_coalesces_identical_batches(meta_style_deployment):
    env, net, transport, client, server, endpoint = meta_style_deployment
    resolver = make_resolver(
        env, client, transport, endpoint, fast_path=FastPathPolicy()
    )
    questions = [BatchQuestion("cs.ctx.hns", RRType.UNSPEC)]
    done = []

    def one_batch():
        answers = yield from resolver.lookup_batch(list(questions))
        done.append(answers[0].status)

    for _ in range(4):
        env.process(one_batch())
    idle(env, 5_000)
    assert done == [STATUS_OK] * 4
    assert env.stats.counter(f"bind.{server.name}.batches").value == 1


# ----------------------------------------------------------------------
# Wire helpers
# ----------------------------------------------------------------------
def test_meta_field_parses_key_value_data():
    assert meta_field(b"ns=BIND-cs;x=1", "ns") == "BIND-cs"
    assert meta_field(b"ns=BIND-cs;x=1", "x") == "1"
    assert meta_field(b"ns=BIND-cs", "missing") is None


def test_substitute_label_sanitizes_value():
    assert substitute_label("qc.*.q.hns", "BIND-cs") == "qc.bind-cs.q.hns"
    assert substitute_label("*.nsm.hns", "A b:c") == "a-b-c.nsm.hns"
