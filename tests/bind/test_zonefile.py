"""Master-file parsing and rendering."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bind import (
    NameNotFound,
    RRType,
    Zone,
    ZoneFileError,
    load_zone_file,
    parse_zone_text,
    render_zone_text,
)
from repro.bind.rr import ResourceRecord

SAMPLE = """
; the cs.washington.edu zone
$ORIGIN cs.washington.edu
$TTL 3600000
fiji        3600000  A      128.95.1.4
june                 A      128.95.1.99
schwartz             TXT    "mailhost=june.cs.washington.edu;mailbox=schwartz"
meta                 UNSPEC "ns=BIND-cs"
@                    TXT    "the origin itself"
www                  CNAME  "fiji.cs.washington.edu"
fiji.cs.washington.edu. TXT "absolute in-zone name"
"""

OUT_OF_ZONE = SAMPLE + "outside.example.com. A 10.0.0.1\n"


def test_parse_sample():
    zone = parse_zone_text(SAMPLE)
    assert str(zone.origin) == "cs.washington.edu"
    assert zone.lookup("fiji.cs.washington.edu", RRType.A)[0].address == "128.95.1.4"
    assert zone.lookup("june.cs.washington.edu", RRType.A)[0].ttl == 3_600_000
    txt = zone.lookup("schwartz.cs.washington.edu", RRType.TXT)[0].text
    assert ";" in txt  # semicolons inside quotes are data, not comments
    assert zone.lookup("cs.washington.edu", RRType.TXT)[0].text == "the origin itself"
    assert zone.lookup("meta.cs.washington.edu", RRType.UNSPEC)


def test_absolute_names_rejected_outside_zone():
    with pytest.raises(ValueError):
        parse_zone_text(OUT_OF_ZONE)  # the Zone enforces containment


def test_absolute_in_zone_name_accepted():
    zone = parse_zone_text(SAMPLE)
    assert zone.lookup("fiji.cs.washington.edu", RRType.TXT)[0].text == (
        "absolute in-zone name"
    )
    assert zone.record_count == 7


def test_ttl_is_optional_per_record():
    zone = parse_zone_text("$ORIGIN z\n$TTL 500\na A 1.2.3.4\nb 900 A 1.2.3.5\n")
    assert zone.lookup("a.z", RRType.A)[0].ttl == 500
    assert zone.lookup("b.z", RRType.A)[0].ttl == 900


def test_default_origin_argument():
    zone = parse_zone_text("a A 1.2.3.4\n", default_origin="z")
    assert zone.lookup("a.z", RRType.A)


@pytest.mark.parametrize(
    "bad,fragment",
    [
        ("a A 1.2.3.4", "before any \\$ORIGIN"),
        ("$ORIGIN z\na A", "needs"),
        ("$ORIGIN z\na MX 10 mail", "unsupported type"),
        ("$ORIGIN z\na A 1.2.3.4 5.6.7.8", "one address"),
        ("$ORIGIN z\n$TTL abc", "bad TTL"),
        ("$ORIGIN", "exactly one name"),
        ("$ORIGIN z\na A 999.1.1.1", "range"),
    ],
)
def test_malformed_files_rejected(bad, fragment):
    with pytest.raises(ZoneFileError, match=fragment):
        parse_zone_text(bad)


def test_error_carries_line_number():
    try:
        parse_zone_text("$ORIGIN z\n\na BOGUS x\n")
    except ZoneFileError as err:
        assert err.line_number == 3
    else:  # pragma: no cover
        pytest.fail("expected ZoneFileError")


def test_render_roundtrip():
    zone = parse_zone_text(SAMPLE)
    rendered = render_zone_text(zone)
    reparsed = parse_zone_text(rendered)
    assert {(str(r.name), r.rtype, r.data) for r in zone.all_records()} == {
        (str(r.name), r.rtype, r.data) for r in reparsed.all_records()
    }


def test_load_zone_file(tmp_path):
    path = tmp_path / "cs.zone"
    path.write_text("$ORIGIN z\nhost A 10.0.0.1\n")
    zone = load_zone_file(str(path))
    assert zone.lookup("host.z", RRType.A)[0].address == "10.0.0.1"


def test_loaded_zone_serves_through_bind():
    """A file-described zone works end-to-end through a server."""
    from repro.bind import BindResolver, BindServer
    from repro.net import DatagramTransport, Internetwork
    from repro.sim import Environment

    env = Environment(seed=12)
    net = Internetwork(env)
    client = net.add_host("c")
    server_host = net.add_host("s")
    zone = parse_zone_text("$ORIGIN filetest.edu\nbox A 10.1.1.1\n")
    server = BindServer(server_host, zones=[zone])
    ep = server.listen()
    resolver = BindResolver(client, DatagramTransport(net), ep)
    address = env.run(
        until=env.process(resolver.lookup_address("box.filetest.edu"))
    )
    assert address == "10.1.1.1"


@given(
    st.lists(
        st.tuples(
            st.from_regex(r"[a-z][a-z0-9]{0,6}", fullmatch=True),
            st.tuples(*[st.integers(min_value=0, max_value=255)] * 4),
        ),
        min_size=1,
        max_size=10,
        unique_by=lambda t: t[0],
    )
)
@settings(max_examples=30, deadline=None)
def test_render_parse_roundtrip_property(entries):
    zone = Zone("prop.test")
    for name, quad in entries:
        zone.add(
            ResourceRecord.a_record(
                f"{name}.prop.test", ".".join(str(o) for o in quad)
            )
        )
    reparsed = parse_zone_text(render_zone_text(zone))
    assert reparsed.record_count == zone.record_count
    for name, quad in entries:
        record = reparsed.lookup(f"{name}.prop.test", RRType.A)[0]
        assert record.address == ".".join(str(o) for o in quad)
