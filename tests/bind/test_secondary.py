"""Primary/secondary replication and resolver failover."""

import pytest

from repro.bind import (
    BindResolver,
    BindServer,
    ResourceRecord,
    RRType,
    SecondaryBindServer,
    UpdateRefused,
    Zone,
)
from repro.harness.calibration import DEFAULT_CALIBRATION
from repro.net import DatagramTransport, Internetwork, TransportTimeout
from repro.sim import ConstantLatency, Environment

CAL = DEFAULT_CALIBRATION


@pytest.fixture
def replicated():
    """Primary with one zone, one secondary, and a client resolver."""
    env = Environment(seed=33)
    net = Internetwork(env)
    seg = net.add_segment(latency=ConstantLatency(CAL.wire_base_ms, CAL.wire_per_byte_ms))
    client = net.add_host("client", seg)
    primary_host = net.add_host("ns-primary", seg)
    secondary_host = net.add_host("ns-secondary", seg)
    zone = Zone("hns")
    zone.add(ResourceRecord.text_record("a.ctx.hns", "ns=one", rtype=RRType.UNSPEC, ttl=10_000))
    primary = BindServer(
        primary_host, zones=[zone], allow_dynamic_update=True, lookup_cost_ms=4.8
    )
    primary_ep = primary.listen()
    udp = DatagramTransport(net, retries=0, retry_timeout_ms=100)
    secondary = SecondaryBindServer(
        secondary_host,
        primary_ep,
        origins=["hns"],
        transport=udp,
        refresh_ms=1_000,
        lookup_cost_ms=4.8,
    )
    secondary_ep = secondary.listen()
    resolver = BindResolver(
        client, udp, primary_ep, secondaries=[secondary_ep]
    )
    return env, net, primary, primary_host, secondary, resolver, udp


def run(env, gen):
    return env.run(until=env.process(gen))


def test_refresh_validation(replicated):
    env, net, primary, primary_host, secondary, resolver, udp = replicated
    with pytest.raises(ValueError):
        SecondaryBindServer(
            secondary.host, primary.endpoint, ["x"], udp, refresh_ms=0
        )


def test_secondary_syncs_on_first_refresh(replicated):
    env, net, primary, primary_host, secondary, resolver, udp = replicated
    assert not secondary.is_synchronized
    pulled = run(env, secondary.refresh_once())
    assert pulled == 1
    assert secondary.is_synchronized
    records = secondary.zone_named(primary.zones[0].origin).lookup(
        "a.ctx.hns", RRType.UNSPEC
    )
    assert records[0].text == "ns=one"


def test_refresh_skips_when_serial_unchanged(replicated):
    env, net, primary, primary_host, secondary, resolver, udp = replicated
    run(env, secondary.refresh_once())
    pulled = run(env, secondary.refresh_once())
    assert pulled == 0
    assert env.stats.counters()[f"bind.{secondary.name}.refresh_skips"] == 1


def test_refresh_pulls_after_primary_update(replicated):
    env, net, primary, primary_host, secondary, resolver, udp = replicated
    run(env, secondary.refresh_once())
    primary.zones[0].add(
        ResourceRecord.text_record("b.ctx.hns", "ns=two", rtype=RRType.UNSPEC, ttl=10_000)
    )
    pulled = run(env, secondary.refresh_once())
    assert pulled == 1
    records = secondary.zone_named(primary.zones[0].origin).lookup(
        "b.ctx.hns", RRType.UNSPEC
    )
    assert records[0].text == "ns=two"


def test_periodic_refresh_loop(replicated):
    env, net, primary, primary_host, secondary, resolver, udp = replicated
    secondary.start_refresh()
    with pytest.raises(RuntimeError):
        secondary.start_refresh()
    env.run(until=100)  # first pass happens immediately
    assert secondary.is_synchronized
    primary.zones[0].add(
        ResourceRecord.text_record("c.ctx.hns", "ns=three", rtype=RRType.UNSPEC, ttl=10_000)
    )
    env.run(until=2_500)  # at least one more refresh period
    assert secondary.zone_named(primary.zones[0].origin).contains(
        "c.ctx.hns", RRType.UNSPEC
    )


def test_secondary_refuses_updates(replicated):
    env, net, primary, primary_host, secondary, resolver, udp = replicated
    client_resolver = BindResolver(
        resolver.host, udp, secondary.endpoint
    )

    def scenario():
        with pytest.raises(UpdateRefused):
            yield from client_resolver.add_record(
                ResourceRecord.text_record("x.ctx.hns", "ns=evil", rtype=RRType.UNSPEC)
            )
        return "done"

    assert run(env, scenario()) == "done"


def test_failover_to_secondary_when_primary_down(replicated):
    env, net, primary, primary_host, secondary, resolver, udp = replicated
    secondary.start_refresh()
    env.run(until=100)
    primary_host.crash()
    records = run(env, resolver.lookup("a.ctx.hns", RRType.UNSPEC))
    assert records[0].text == "ns=one"
    assert env.stats.counters()["bind.resolver.failovers"] >= 1


def test_no_failover_when_primary_healthy(replicated):
    env, net, primary, primary_host, secondary, resolver, udp = replicated
    run(env, resolver.lookup("a.ctx.hns", RRType.UNSPEC))
    assert "bind.resolver.failovers" not in env.stats.counters()


def test_all_replicas_down_raises(replicated):
    env, net, primary, primary_host, secondary, resolver, udp = replicated
    secondary.start_refresh()
    env.run(until=100)
    primary_host.crash()
    secondary.host.crash()

    def scenario():
        with pytest.raises(TransportTimeout):
            yield from resolver.lookup("a.ctx.hns", RRType.UNSPEC)
        return "done"

    assert run(env, scenario()) == "done"


def test_staleness_window(replicated):
    """An update on the primary is invisible at the secondary until the
    next refresh — the bounded staleness BIND replication accepts."""
    env, net, primary, primary_host, secondary, resolver, udp = replicated
    run(env, secondary.refresh_once())
    primary.zones[0].replace(
        "a.ctx.hns",
        RRType.UNSPEC,
        [ResourceRecord.text_record("a.ctx.hns", "ns=NEW", rtype=RRType.UNSPEC, ttl=10_000)],
    )
    stale = secondary.zone_named(primary.zones[0].origin).lookup(
        "a.ctx.hns", RRType.UNSPEC
    )
    assert stale[0].text == "ns=one"
    run(env, secondary.refresh_once())
    fresh = secondary.zone_named(primary.zones[0].origin).lookup(
        "a.ctx.hns", RRType.UNSPEC
    )
    assert fresh[0].text == "ns=NEW"


def test_refresh_survives_primary_outage(replicated):
    env, net, primary, primary_host, secondary, resolver, udp = replicated
    run(env, secondary.refresh_once())
    primary_host.crash()
    pulled = run(env, secondary.refresh_once())  # fails gracefully
    assert pulled == 0
    assert env.stats.counters()[f"bind.{secondary.name}.refresh_failures"] == 1
    # And the replica still answers.
    assert secondary.zone_named(primary.zones[0].origin).contains(
        "a.ctx.hns", RRType.UNSPEC
    )
    primary_host.restart()
    primary.zones[0].add(ResourceRecord.text_record("d.ctx.hns", "ns=back", rtype=RRType.UNSPEC))
    assert run(env, secondary.refresh_once()) == 1


def test_replicated_metastore_survives_primary_crash():
    """End-to-end: HNS meta lookups keep working through a secondary."""
    from repro.core.metastore import MetaStore
    from repro.workloads import build_testbed

    testbed = build_testbed(seed=34)
    env = testbed.env
    secondary_host = testbed.internet.add_host("meta2")
    secondary = SecondaryBindServer(
        secondary_host,
        testbed.meta_endpoint,
        origins=["hns"],
        transport=testbed.udp,
        refresh_ms=5_000,
        lookup_cost_ms=testbed.calibration.meta_bind_lookup_ms,
    )
    secondary_ep = secondary.listen()
    secondary.start_refresh()
    env.run(until=env.now + 1_000)
    assert secondary.is_synchronized

    metastore = MetaStore(
        testbed.client,
        testbed.udp,
        testbed.meta_endpoint,
        calibration=testbed.calibration,
        secondaries=[secondary_ep],
    )
    testbed.meta_host.crash()
    ns = env.run(
        until=env.process(metastore.context_to_name_service("BIND-cs"))
    )
    assert ns == "BIND-cs"
