"""Server + resolver end-to-end, including the calibrated 27 ms lookup."""

import pytest

from repro.bind import (
    BindResolver,
    BindServer,
    NameNotFound,
    ResourceRecord,
    RRType,
    UpdateRefused,
    Zone,
    ZoneNotFound,
)


def run(env, gen):
    return env.run(until=env.process(gen))


def test_lookup_returns_records(deployment):
    env, net, transport, client, server, endpoint = deployment
    resolver = BindResolver(client, transport, endpoint)

    records = run(env, resolver.lookup("fiji.cs.washington.edu"))
    assert len(records) == 1
    assert records[0].address == "128.95.1.4"


def test_conventional_lookup_costs_27ms(deployment):
    """'a BIND name to address lookup takes 27 msec.'"""
    env, net, transport, client, server, endpoint = deployment
    resolver = BindResolver(client, transport, endpoint)

    start = env.now
    run(env, resolver.lookup_address("fiji.cs.washington.edu"))
    assert env.now - start == pytest.approx(27.0, rel=0.02)


def test_lookup_missing_name_raises(deployment):
    env, net, transport, client, server, endpoint = deployment
    resolver = BindResolver(client, transport, endpoint)

    def scenario():
        with pytest.raises(NameNotFound):
            yield from resolver.lookup("nohost.cs.washington.edu")
        return "done"

    assert run(env, scenario()) == "done"


def test_lookup_outside_any_zone_raises(deployment):
    env, net, transport, client, server, endpoint = deployment
    resolver = BindResolver(client, transport, endpoint)

    def scenario():
        with pytest.raises(NameNotFound):
            yield from resolver.lookup("host.mit.edu")
        return "done"

    assert run(env, scenario()) == "done"


def test_multi_record_answer(deployment):
    env, net, transport, client, server, endpoint = deployment
    resolver = BindResolver(client, transport, endpoint)
    records = run(env, resolver.lookup("gateway.gw.net"))
    assert len(records) == 6
    assert {r.address for r in records} == {f"10.0.0.{i + 1}" for i in range(6)}


def test_generated_marshalling_costs_more(deployment):
    env, net, transport, client, server, endpoint = deployment
    hand = BindResolver(client, transport, endpoint, marshalling="handcoded")
    gen = BindResolver(client, transport, endpoint, marshalling="generated")

    t0 = env.now
    run(env, hand.lookup("fiji.cs.washington.edu"))
    hand_time = env.now - t0
    t1 = env.now
    run(env, gen.lookup("fiji.cs.washington.edu"))
    gen_time = env.now - t1
    # Generated demarshalling adds ~9.6 ms on a 1-record response.
    assert gen_time - hand_time == pytest.approx(10.28 - 0.65, rel=0.02)


def test_bad_marshalling_style_rejected(deployment):
    env, net, transport, client, server, endpoint = deployment
    with pytest.raises(ValueError):
        BindResolver(client, transport, endpoint, marshalling="psychic")


def test_dynamic_update_refused_by_public_server(deployment):
    env, net, transport, client, server, endpoint = deployment
    resolver = BindResolver(client, transport, endpoint)

    def scenario():
        with pytest.raises(UpdateRefused):
            yield from resolver.add_record(
                ResourceRecord.a_record("new.cs.washington.edu", "1.2.3.4")
            )
        return "done"

    assert run(env, scenario()) == "done"


def test_dynamic_update_on_modified_server(deployment):
    env, net, transport, client, _, _ = deployment
    host = net.add_host("meta")
    zone = Zone("hns")
    meta = BindServer(
        host, zones=[zone], allow_dynamic_update=True, lookup_cost_ms=4.8
    )
    ep = meta.listen()
    resolver = BindResolver(client, transport, ep)

    serial = run(
        env,
        resolver.add_record(
            ResourceRecord.text_record("ctx.context.hns", "BIND-cs", ttl=1000)
        ),
    )
    assert serial == zone.serial
    records = run(env, resolver.lookup("ctx.context.hns", RRType.TXT))
    assert records[0].text == "BIND-cs"

    # Replace and delete round out the update modes.
    run(
        env,
        resolver.replace_records(
            "ctx.context.hns",
            RRType.TXT,
            [ResourceRecord.text_record("ctx.context.hns", "BIND-ee", ttl=1000)],
        ),
    )
    assert (
        run(env, resolver.lookup("ctx.context.hns", RRType.TXT))[0].text == "BIND-ee"
    )
    run(env, resolver.remove_records("ctx.context.hns", RRType.TXT))

    def scenario():
        with pytest.raises(NameNotFound):
            yield from resolver.lookup("ctx.context.hns", RRType.TXT)
        return "done"

    assert run(env, scenario()) == "done"


def test_update_to_unknown_zone(deployment):
    env, net, transport, client, _, _ = deployment
    host = net.add_host("meta")
    meta = BindServer(host, zones=[Zone("hns")], allow_dynamic_update=True)
    ep = meta.listen()
    resolver = BindResolver(client, transport, ep)

    def scenario():
        with pytest.raises(NameNotFound):
            yield from resolver.add_record(
                ResourceRecord.a_record("x.other", "1.2.3.4")
            )
        return "done"

    assert run(env, scenario()) == "done"


def test_zone_transfer_returns_all_records(deployment):
    env, net, transport, client, server, endpoint = deployment
    resolver = BindResolver(client, transport, endpoint)
    serial, records = run(env, resolver.zone_transfer("cs.washington.edu"))
    assert serial > 0
    assert {str(r.name) for r in records} == {
        "fiji.cs.washington.edu",
        "june.cs.washington.edu",
    }


def test_zone_transfer_refused_when_disabled(deployment):
    env, net, transport, client, _, _ = deployment
    host = net.add_host("private")
    server = BindServer(host, zones=[Zone("secret")], allow_zone_transfer=False)
    ep = server.listen()
    resolver = BindResolver(client, transport, ep)

    def scenario():
        with pytest.raises(ZoneNotFound):
            yield from resolver.zone_transfer("secret")
        return "done"

    assert run(env, scenario()) == "done"


def test_zone_transfer_of_unknown_zone(deployment):
    env, net, transport, client, server, endpoint = deployment
    resolver = BindResolver(client, transport, endpoint)

    def scenario():
        with pytest.raises(ZoneNotFound):
            yield from resolver.zone_transfer("nope")
        return "done"

    assert run(env, scenario()) == "done"


def test_server_longest_zone_match():
    from repro.net import Internetwork
    from repro.sim import Environment
    from repro.bind import DomainName

    env = Environment()
    net = Internetwork(env)
    host = net.add_host("ns")
    outer = Zone("washington.edu")
    inner = Zone("cs.washington.edu")
    server = BindServer(host, zones=[outer, inner])
    assert server.zone_for(DomainName("fiji.cs.washington.edu")) is inner
    assert server.zone_for(DomainName("ee.washington.edu")) is outer
    assert server.zone_for(DomainName("mit.edu")) is None
    with pytest.raises(ValueError):
        server.add_zone(Zone("cs.washington.edu"))


def test_concurrent_queries_queue_on_server_cpu(deployment):
    env, net, transport, client, server, endpoint = deployment
    resolver = BindResolver(client, transport, endpoint)
    client2 = net.add_host("client2")
    resolver2 = BindResolver(client2, transport, endpoint)

    done = {}

    def q(tag, res):
        yield from res.lookup("fiji.cs.washington.edu")
        done[tag] = env.now

    env.process(q("a", resolver))
    env.process(q("b", resolver2))
    env.run()
    # The server CPU serialises the two ~23 ms lookups: under contention
    # both queries take roughly twice the uncontended 27 ms.
    assert max(done.values()) >= 45.0
