"""Resolver cache: TTL invalidation, formats, Table 3.2 hit costs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bind import BindResolver, CacheFormat, ResolverCache
from repro.sim import Environment


def run(env, gen):
    return env.run(until=env.process(gen))


# ----------------------------------------------------------------------
# Pure cache mechanics
# ----------------------------------------------------------------------
def test_probe_miss_then_hit():
    env = Environment()
    cache = ResolverCache(env)
    entry, cost = cache.probe("k")
    assert entry is None and cost > 0
    cache.insert("k", ["v"], 1, ttl_ms=100)
    entry, _ = cache.probe("k")
    assert entry is not None and entry.payload == ["v"]
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_ratio == 0.5


def test_ttl_expiry():
    env = Environment()
    cache = ResolverCache(env)
    cache.insert("k", "v", 1, ttl_ms=50)
    assert "k" in cache
    env.run(until=49)
    assert cache.probe("k")[0] is not None
    env.run(until=50)
    assert "k" not in cache
    assert cache.probe("k")[0] is None
    assert cache.expirations == 1


def test_zero_ttl_not_cached():
    env = Environment()
    cache = ResolverCache(env)
    assert cache.insert("k", "v", 1, ttl_ms=0) == 0.0
    assert len(cache) == 0


def test_lru_eviction():
    env = Environment()
    cache = ResolverCache(env, capacity=2)
    cache.insert("a", 1, 1, 1000)
    cache.insert("b", 2, 1, 1000)
    cache.probe("a")  # a is now most recently used
    cache.insert("c", 3, 1, 1000)
    assert "a" in cache and "c" in cache and "b" not in cache
    assert cache.evictions == 1


def test_eviction_prefers_expired_over_live():
    """At capacity, a dead entry goes before the LRU live one."""
    env = Environment()
    cache = ResolverCache(env, capacity=2)
    cache.insert("a", 1, 1, 10_000)  # LRU but live
    cache.insert("b", 2, 1, 50)  # expires first
    env.run(until=60)
    cache.insert("c", 3, 1, 10_000)
    assert "a" in cache and "c" in cache and "b" not in cache
    assert cache.evictions == 1


def test_counters_mirrored_into_env_stats():
    """Every cache counter doubles as a cache.<name>.<counter> stat."""
    env = Environment()
    cache = ResolverCache(env, name="unit", capacity=1)
    cache.probe("k")  # miss
    cache.insert("k", "v", 1, 1000)
    cache.probe("k")  # hit
    cache.insert("other", "w", 1, 1000)  # evicts k
    cache.record_coalesced()
    cache.record_refresh()
    counters = env.stats.counters()
    assert counters["cache.unit.misses"] == cache.misses == 1
    assert counters["cache.unit.hits"] == cache.hits == 1
    assert counters["cache.unit.evictions"] == cache.evictions == 1
    assert counters["cache.unit.coalesced"] == cache.coalesced == 1
    assert counters["cache.unit.refreshes"] == cache.refreshes == 1


def test_reinsert_at_capacity_does_not_evict_other():
    env = Environment()
    cache = ResolverCache(env, capacity=2)
    cache.insert("a", 1, 1, 1000)
    cache.insert("b", 2, 1, 1000)
    cache.insert("a", 9, 1, 1000)  # overwrite in place
    assert "a" in cache and "b" in cache
    assert cache.evictions == 0


def test_invalidate_and_clear():
    env = Environment()
    cache = ResolverCache(env)
    cache.insert("a", 1, 1, 1000)
    assert cache.invalidate("a")
    assert not cache.invalidate("a")
    cache.insert("b", 1, 1, 1000)
    cache.clear()
    assert len(cache) == 0


def test_capacity_validation():
    with pytest.raises(ValueError):
        ResolverCache(Environment(), capacity=0)


def test_hit_cost_formats():
    env = Environment()
    dem = ResolverCache(env, fmt=CacheFormat.DEMARSHALLED)
    mar = ResolverCache(env, fmt=CacheFormat.MARSHALLED)
    dem.insert("k", ["v"], 1, 1000)
    mar.insert("k", b"bytes", 1, 1000)
    dem_entry, _ = dem.probe("k")
    mar_entry, _ = mar.probe("k")
    # Demarshalled hits ignore the demarshal cost argument.
    assert dem.hit_cost(dem_entry, demarshal_cost_ms=99) == dem.hit_cost(dem_entry)
    assert mar.hit_cost(mar_entry, demarshal_cost_ms=10.28) == pytest.approx(
        10.28 + dem.hit_cost(dem_entry)
    )


@given(st.integers(min_value=1, max_value=20), st.floats(min_value=1, max_value=1e4))
@settings(max_examples=40, deadline=None)
def test_entry_never_survives_its_ttl(nrecords, ttl):
    env = Environment()
    cache = ResolverCache(env)
    cache.insert("k", "v", nrecords, ttl)
    env.run(until=ttl)
    assert "k" not in cache


# ----------------------------------------------------------------------
# Resolver + cache integration (Table 3.2 end-to-end costs)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "name,nrecords,dem_target",
    [("fiji.cs.washington.edu", 1, 0.83), ("gateway.gw.net", 6, 1.22)],
)
def test_demarshalled_hit_cost_matches_paper(deployment, name, nrecords, dem_target):
    env, net, transport, client, server, endpoint = deployment
    cache = ResolverCache(env, fmt=CacheFormat.DEMARSHALLED)
    resolver = BindResolver(
        client, transport, endpoint, marshalling="generated", cache=cache
    )
    run(env, resolver.lookup(name))  # warm
    start = env.now
    records = run(env, resolver.lookup(name))
    assert len(records) == nrecords
    assert env.now - start == pytest.approx(dem_target, rel=0.005)


@pytest.mark.parametrize(
    "name,marsh_target", [("fiji.cs.washington.edu", 11.11), ("gateway.gw.net", 26.17)]
)
def test_marshalled_hit_cost_matches_paper(deployment, name, marsh_target):
    env, net, transport, client, server, endpoint = deployment
    cache = ResolverCache(env, fmt=CacheFormat.MARSHALLED)
    resolver = BindResolver(
        client, transport, endpoint, marshalling="generated", cache=cache
    )
    run(env, resolver.lookup(name))
    start = env.now
    run(env, resolver.lookup(name))
    assert env.now - start == pytest.approx(marsh_target, rel=0.005)


def test_cached_records_match_uncached(deployment):
    env, net, transport, client, server, endpoint = deployment
    cache = ResolverCache(env)
    cached = BindResolver(client, transport, endpoint, cache=cache)
    plain = BindResolver(client, transport, endpoint)
    a = run(env, plain.lookup("gateway.gw.net"))
    run(env, cached.lookup("gateway.gw.net"))
    b = run(env, cached.lookup("gateway.gw.net"))  # from cache
    assert {r.address for r in a} == {r.address for r in b}
    assert cache.hits == 1


def test_cache_expiry_forces_refetch(deployment):
    env, net, transport, client, server, endpoint = deployment
    # Shrink the zone TTLs so expiry happens quickly.
    zone = server.zones[0]
    from repro.bind import ResourceRecord, RRType

    zone.replace(
        "fiji.cs.washington.edu",
        RRType.A,
        [ResourceRecord.a_record("fiji.cs.washington.edu", "128.95.1.4", ttl=200)],
    )
    cache = ResolverCache(env)
    resolver = BindResolver(client, transport, endpoint, cache=cache)
    run(env, resolver.lookup("fiji.cs.washington.edu"))
    env.run(until=env.now + 250)
    run(env, resolver.lookup("fiji.cs.washington.edu"))
    assert env.stats.counters()["bind.resolver.remote_lookups"] == 2


def test_stale_cache_serves_old_data_until_ttl(deployment):
    """The paper accepts TTL-bounded staleness; verify the window."""
    env, net, transport, client, server, endpoint = deployment
    from repro.bind import ResourceRecord, RRType

    zone = server.zones[0]
    zone.replace(
        "fiji.cs.washington.edu",
        RRType.A,
        [ResourceRecord.a_record("fiji.cs.washington.edu", "128.95.1.4", ttl=500)],
    )
    cache = ResolverCache(env)
    resolver = BindResolver(client, transport, endpoint, cache=cache)
    run(env, resolver.lookup("fiji.cs.washington.edu"))
    # The authority changes the address...
    zone.replace(
        "fiji.cs.washington.edu",
        RRType.A,
        [ResourceRecord.a_record("fiji.cs.washington.edu", "10.9.9.9", ttl=500)],
    )
    # ...but within the TTL the cache still answers with the old one.
    records = run(env, resolver.lookup("fiji.cs.washington.edu"))
    assert records[0].address == "128.95.1.4"
    env.run(until=env.now + 600)
    records = run(env, resolver.lookup("fiji.cs.washington.edu"))
    assert records[0].address == "10.9.9.9"


def test_preload_populates_cache(deployment):
    env, net, transport, client, server, endpoint = deployment
    cache = ResolverCache(env)
    resolver = BindResolver(client, transport, endpoint, cache=cache)
    loaded = run(env, resolver.preload_cache("cs.washington.edu"))
    assert loaded == 2
    assert len(cache) == 2
    # Preloaded entries answer without remote calls.
    run(env, resolver.lookup("fiji.cs.washington.edu"))
    assert "bind.resolver.remote_lookups" not in env.stats.counters()


def test_preload_requires_cache(deployment):
    env, net, transport, client, server, endpoint = deployment
    resolver = BindResolver(client, transport, endpoint)
    with pytest.raises(ValueError):
        run(env, resolver.preload_cache("cs.washington.edu"))


def test_preload_into_marshalled_cache(deployment):
    env, net, transport, client, server, endpoint = deployment
    cache = ResolverCache(env, fmt=CacheFormat.MARSHALLED)
    resolver = BindResolver(
        client, transport, endpoint, marshalling="generated", cache=cache
    )
    run(env, resolver.preload_cache("cs.washington.edu"))
    records = run(env, resolver.lookup("june.cs.washington.edu"))
    assert records[0].address == "128.95.1.5"
