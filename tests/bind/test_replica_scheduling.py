"""Replica-aware meta reads: adaptive selection, hedging, breaker skip."""

import pytest

from repro.bind import BindResolver, BindServer, ReplicaScheduler, ResourceRecord, RRType, Zone
from repro.harness.calibration import DEFAULT_CALIBRATION
from repro.net import DatagramTransport, Internetwork
from repro.net.addresses import Endpoint, NetworkAddress
from repro.resolution import ReplicaPolicy
from repro.sim import ConstantLatency, Environment

CAL = DEFAULT_CALIBRATION


def rec(name, text, ttl=3_600_000):
    return ResourceRecord.text_record(name, text, rtype=RRType.UNSPEC, ttl=ttl)


def run(env, gen):
    return env.run(until=env.process(gen))


# ----------------------------------------------------------------------
# Policy validation
# ----------------------------------------------------------------------
def test_policy_defaults_enable_everything():
    policy = ReplicaPolicy()
    assert policy.adaptive and policy.hedging and policy.scheduling
    assert policy.skip_open_breakers and policy.ixfr


def test_disabled_policy_is_inert():
    policy = ReplicaPolicy.disabled()
    assert not policy.adaptive
    assert not policy.hedging
    assert not policy.scheduling
    assert not policy.skip_open_breakers
    assert not policy.ixfr


@pytest.mark.parametrize(
    "kwargs",
    [
        {"ewma_alpha": 0.0},
        {"ewma_alpha": 1.5},
        {"inflight_penalty_ms": -1.0},
        {"hedge_quantile": 1.0},
        {"hedge_min_samples": 0},
        {"hedge_min_delay_ms": 10.0, "hedge_max_delay_ms": 5.0},
        {"max_hedges": -1},
        {"breaker_threshold": -1},
        {"breaker_reset_ms": -1.0},
    ],
)
def test_policy_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        ReplicaPolicy(**kwargs)


# ----------------------------------------------------------------------
# Scheduler unit behaviour (no network)
# ----------------------------------------------------------------------
def endpoints(n):
    return [Endpoint(NetworkAddress(f"10.0.0.{i + 1}"), 530) for i in range(n)]


def test_scheduler_prefers_measured_fast_replica():
    env = Environment(seed=1)
    eps = endpoints(2)
    sched = ReplicaScheduler(env, eps, ReplicaPolicy(), name="r")
    fast, slow = sched.states
    for _ in range(6):
        sched.record_start(fast)
        sched.record_success(fast, 5.0, won=True)
        sched.record_start(slow)
        sched.record_success(slow, 200.0, won=True)
    # p2c always compares the only two replicas; the fast one leads.
    for _ in range(10):
        assert sched.plan()[0] is fast


def test_scheduler_inflight_penalty_sheds_load():
    env = Environment(seed=2)
    sched = ReplicaScheduler(
        env, endpoints(2), ReplicaPolicy(inflight_penalty_ms=1_000.0), name="r"
    )
    a, b = sched.states
    sched.record_start(a)
    sched.record_success(a, 5.0, won=True)
    sched.record_start(b)
    sched.record_success(b, 10.0, won=True)
    # a is faster, but pile requests onto it and b takes over.
    for _ in range(3):
        sched.record_start(a)
    assert sched.plan()[0] is b


def test_scheduler_skips_open_breaker():
    env = Environment(seed=3)
    sched = ReplicaScheduler(
        env,
        endpoints(2),
        ReplicaPolicy(adaptive=False, breaker_threshold=1),
        name="r",
    )
    dead, live = sched.states
    sched.record_start(dead)
    sched.record_failure(dead, 100.0)
    assert dead.breaker.state == "open"
    plan = sched.plan()
    assert plan == [live]
    assert env.stats.counters()[f"bind.replica.{dead.label}.skipped"] == 1


def test_scheduler_falls_back_when_all_breakers_open():
    env = Environment(seed=4)
    sched = ReplicaScheduler(
        env,
        endpoints(2),
        ReplicaPolicy(adaptive=False, breaker_threshold=1),
        name="r",
    )
    for state in sched.states:
        sched.record_start(state)
        sched.record_failure(state, 100.0)
    # Refusing outright would turn a brown-out into a black-out: the
    # full static order is still offered.
    assert sched.plan() == sched.states


def test_hedge_delay_needs_samples_then_tracks_quantile():
    env = Environment(seed=5)
    policy = ReplicaPolicy(hedge_min_samples=8, hedge_quantile=0.95)
    sched = ReplicaScheduler(env, endpoints(2), policy, name="r")
    state = sched.states[0]
    assert sched.hedge_delay_ms() is None
    for latency in (10.0,) * 19 + (500.0,):
        sched.record_start(state)
        sched.record_success(state, latency, won=True)
    delay = sched.hedge_delay_ms()
    # 95th percentile of {10 x19, 500}: near the top of the fast cluster.
    assert delay is not None
    assert 10.0 <= delay <= 500.0
    # Clamping: a tiny max wins over the observed quantile.
    clamped = ReplicaScheduler(
        env, endpoints(2), ReplicaPolicy(hedge_max_delay_ms=2.0), name="r2"
    )
    for _ in range(8):
        clamped.record_start(clamped.states[0])
        clamped.record_success(clamped.states[0], 300.0, won=True)
    assert clamped.hedge_delay_ms() == 2.0


def test_scheduler_mirrors_counters_and_ewma_timer():
    env = Environment(seed=6)
    sched = ReplicaScheduler(env, endpoints(1), ReplicaPolicy(), name="r")
    state = sched.states[0]
    sched.record_start(state, hedge=False)
    sched.record_success(state, 10.0, won=True)
    sched.record_start(state, hedge=True)
    sched.record_success(state, 20.0, won=False)
    sched.record_start(state)
    sched.record_failure(state, 100.0)
    label = state.label
    counters = env.stats.counters()
    assert counters[f"bind.replica.{label}.requests"] == 3
    assert counters[f"bind.replica.{label}.hedges"] == 1
    assert counters[f"bind.replica.{label}.wins"] == 1
    assert counters[f"bind.replica.{label}.errors"] == 1
    timer = env.stats.timer(f"bind.replica.{label}.ewma_ms")
    assert timer.count == 3
    # EWMA after 10, 20, 100 with alpha 0.3: 10 -> 13 -> 39.1
    assert timer.samples[-1] == pytest.approx(39.1)
    assert state.ewma_ms == pytest.approx(39.1)


# ----------------------------------------------------------------------
# End-to-end: a resolver over two replicas
# ----------------------------------------------------------------------
class StallServer(BindServer):
    """A BindServer that can be told to sit on requests for a while."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.stall_ms = 0.0

    def handle(self, datagram, responder):
        if self.stall_ms:
            yield self.env.timeout(self.stall_ms)
        yield from super().handle(datagram, responder)


def make_cluster(replica_policy, seed=41, primary_cost=4.8, secondary_cost=4.8):
    env = Environment(seed=seed)
    net = Internetwork(env)
    seg = net.add_segment(
        latency=ConstantLatency(CAL.wire_base_ms, CAL.wire_per_byte_ms)
    )
    client = net.add_host("client", seg)
    primary_host = net.add_host("ns-primary", seg)
    secondary_host = net.add_host("ns-secondary", seg)

    def make_zone():
        zone = Zone("hns")
        zone.add(rec("a.ctx.hns", "ns=one"))
        return zone

    primary = StallServer(
        primary_host, zones=[make_zone()], lookup_cost_ms=primary_cost
    )
    secondary = BindServer(
        secondary_host, zones=[make_zone()], lookup_cost_ms=secondary_cost
    )
    primary_ep = primary.listen()
    secondary_ep = secondary.listen()
    udp = DatagramTransport(net, retries=0, retry_timeout_ms=100)
    resolver = BindResolver(
        client,
        udp,
        primary_ep,
        secondaries=[secondary_ep],
        replica_policy=replica_policy,
        name="r",
    )
    return env, resolver, primary, secondary, primary_host


def lookup_once(env, resolver):
    start = env.now

    def go():
        records = yield from resolver.lookup("a.ctx.hns", RRType.UNSPEC)
        return records

    records = run(env, go())
    return records, env.now - start


def test_adaptive_selection_avoids_slow_replica():
    env, resolver, primary, secondary, _ = make_cluster(
        ReplicaPolicy(hedge_quantile=0.0, max_hedges=0),  # adaptive only
        primary_cost=200.0,
        secondary_cost=4.8,
    )
    for _ in range(20):
        records, _elapsed = lookup_once(env, resolver)
        assert records[0].text == "ns=one"
    counters = env.stats.counters()
    primary_label = str(resolver.server)
    secondary_label = str(resolver.secondaries[0])
    to_primary = counters.get(f"bind.replica.{primary_label}.requests", 0)
    to_secondary = counters.get(f"bind.replica.{secondary_label}.requests", 0)
    assert to_primary + to_secondary >= 20
    # A few exploration probes hit the slow primary; the bulk does not.
    assert to_secondary >= 15
    assert to_primary <= 5


def test_hedging_rescues_a_stalled_primary():
    policy = ReplicaPolicy(adaptive=False, hedge_min_samples=4)
    env, resolver, primary, secondary, _ = make_cluster(policy)
    # Warm the latency window on the (static-order) primary.
    for _ in range(6):
        _records, elapsed = lookup_once(env, resolver)
    baseline = elapsed
    primary.stall_ms = 500.0
    records, elapsed = lookup_once(env, resolver)
    assert records[0].text == "ns=one"
    # The hedge to the secondary answers long before the stalled
    # primary would have.
    assert elapsed < 100.0
    counters = env.stats.counters()
    assert counters[f"bind.r.hedges"] >= 1
    secondary_label = str(resolver.secondaries[0])
    assert counters[f"bind.replica.{secondary_label}.wins"] >= 1
    assert elapsed < baseline + 60.0


def test_ordered_failover_eats_the_stall_without_hedging():
    env, resolver, primary, secondary, _ = make_cluster(ReplicaPolicy.disabled())
    for _ in range(6):
        lookup_once(env, resolver)
    primary.stall_ms = 500.0
    _records, elapsed = lookup_once(env, resolver)
    # Static failover waits out the full transport timeout before it
    # even tries the secondary; hedging answers in a fraction of that.
    assert elapsed >= 100.0


def test_breaker_skip_spares_cold_lookups_the_timeout():
    policy = ReplicaPolicy(
        adaptive=False, hedge_quantile=0.0, max_hedges=0, breaker_threshold=1
    )
    env, resolver, primary, secondary, primary_host = make_cluster(policy)
    primary_host.crash()
    # First lookup pays the transport timeout, fails over, and trips
    # the primary's breaker.
    records, elapsed = lookup_once(env, resolver)
    assert records[0].text == "ns=one"
    assert elapsed >= 100.0
    primary_label = str(resolver.server)
    counters = env.stats.counters()
    assert counters[f"bind.replica.{primary_label}.errors"] == 1
    # Second lookup skips the open breaker: no timeout in its path.
    records, elapsed = lookup_once(env, resolver)
    assert records[0].text == "ns=one"
    assert elapsed < 100.0
    counters = env.stats.counters()
    assert counters[f"bind.replica.{primary_label}.skipped"] >= 1
    assert counters[f"bind.replica.{primary_label}.errors"] == 1  # unchanged


def test_static_failover_pays_the_timeout_every_time():
    env, resolver, primary, secondary, primary_host = make_cluster(
        ReplicaPolicy.disabled()
    )
    primary_host.crash()
    for _ in range(2):
        records, elapsed = lookup_once(env, resolver)
        assert records[0].text == "ns=one"
        assert elapsed >= 100.0  # the dead primary taxes every lookup


def test_disabled_policy_reproduces_legacy_behaviour_exactly():
    """`ReplicaPolicy.disabled()` must be bit-for-bit the no-policy path."""

    def drive(replica_policy):
        env, resolver, primary, secondary, primary_host = make_cluster(
            replica_policy, seed=47
        )
        for _ in range(5):
            lookup_once(env, resolver)
        primary_host.crash()
        lookup_once(env, resolver)
        primary_host.restart()
        for _ in range(3):
            lookup_once(env, resolver)
        return env.now, env.stats.counters()

    legacy_now, legacy_counters = drive(None)
    ablated_now, ablated_counters = drive(ReplicaPolicy.disabled())
    assert ablated_now == legacy_now
    assert ablated_counters == legacy_counters


def test_disabled_policy_has_no_scheduler():
    env, resolver, *_ = make_cluster(ReplicaPolicy.disabled())
    assert resolver._scheduler is None
    env2, resolver2, *_ = make_cluster(ReplicaPolicy())
    assert resolver2._scheduler is not None
