"""Shared fixtures: a small simulated BIND deployment."""

import pytest

from repro.bind import BindServer, ResourceRecord, Zone
from repro.harness.calibration import DEFAULT_CALIBRATION
from repro.net import DatagramTransport, Internetwork
from repro.sim import ConstantLatency, Environment

CAL = DEFAULT_CALIBRATION


@pytest.fixture
def deployment():
    """env, internetwork, transport, client host, and a public BIND."""
    env = Environment(seed=11)
    net = Internetwork(env)
    segment = net.add_segment(
        latency=ConstantLatency(CAL.wire_base_ms, CAL.wire_per_byte_ms)
    )
    client = net.add_host("client", segment)
    server_host = net.add_host("ns0", segment)
    zone = Zone("cs.washington.edu")
    zone.add(ResourceRecord.a_record("fiji.cs.washington.edu", "128.95.1.4"))
    zone.add(ResourceRecord.a_record("june.cs.washington.edu", "128.95.1.5"))
    gateway_zone = Zone("gw.net")
    for i in range(6):
        gateway_zone.add(ResourceRecord.a_record("gateway.gw.net", f"10.0.0.{i + 1}"))
    server = BindServer(server_host, zones=[zone, gateway_zone])
    endpoint = server.listen()
    transport = DatagramTransport(net)
    return env, net, transport, client, server, endpoint
