"""Incremental zone transfer: the journal, the wire, and the refresh."""

import pytest

from repro.bind import (
    BindResolver,
    DomainName,
    BindServer,
    ResolverCache,
    ResourceRecord,
    RRType,
    SecondaryBindServer,
    Zone,
    ZoneDelta,
)
from repro.bind.messages import delta_from_idl, delta_to_idl
from repro.harness.calibration import DEFAULT_CALIBRATION
from repro.net import DatagramTransport, Internetwork
from repro.resolution import ReplicaPolicy
from repro.sim import ConstantLatency, Environment

CAL = DEFAULT_CALIBRATION


def rec(name, text, ttl=10_000):
    return ResourceRecord.text_record(name, text, rtype=RRType.UNSPEC, ttl=ttl)


def run(env, gen):
    return env.run(until=env.process(gen))


# ----------------------------------------------------------------------
# The zone journal
# ----------------------------------------------------------------------
def test_journal_records_each_update():
    zone = Zone("hns")
    zone.add(rec("a.ctx.hns", "ns=one"))       # serial 2
    zone.add(rec("b.ctx.hns", "ns=two"))       # serial 3
    zone.remove("a.ctx.hns", RRType.UNSPEC)    # serial 4
    deltas = zone.delta_since(1)
    assert deltas is not None
    assert [d.serial for d in deltas] == [2, 3, 4]
    assert deltas[0].records[0].text == "ns=one"
    assert deltas[2].records == ()  # deletion: empty record set


def test_delta_since_current_serial_is_empty():
    zone = Zone("hns")
    zone.add(rec("a.ctx.hns", "ns=one"))
    assert zone.delta_since(zone.serial) == []
    assert zone.delta_since(zone.serial + 5) == []


def test_delta_since_partial():
    zone = Zone("hns")
    zone.add(rec("a.ctx.hns", "ns=one"))   # 2
    zone.add(rec("b.ctx.hns", "ns=two"))   # 3
    deltas = zone.delta_since(2)
    assert [d.serial for d in deltas] == [3]


def test_delta_since_truncated_journal_returns_none():
    zone = Zone("hns", journal_limit=2)
    for i in range(5):
        zone.add(rec(f"x{i}.ctx.hns", f"ns=x{i}"))
    # Journal only holds serials 5 and 6; serial 2 is unreachable.
    assert zone.delta_since(2) is None
    assert zone.delta_since(4) is not None


def test_delta_since_predating_journal_returns_none():
    zone = Zone("hns")
    zone.add(rec("a.ctx.hns", "ns=one"))
    # A requester at serial 0 never saw the initial empty zone: the
    # journal starts at serial 2, so coverage of 0 is impossible.
    assert zone.delta_since(0) is None


def test_apply_delta_tracks_primary():
    primary = Zone("hns")
    replica = Zone("hns")
    primary.add(rec("a.ctx.hns", "ns=one"))
    primary.replace(
        "a.ctx.hns", RRType.UNSPEC, [rec("a.ctx.hns", "ns=NEW")]
    )
    for delta in primary.delta_since(1):
        replica.apply_delta(delta)
    assert replica.serial == primary.serial
    assert replica.all_records() == primary.all_records()
    # The replica re-journals the applied deltas, so it can serve IXFR
    # to a downstream requester at an intermediate serial.
    assert replica.delta_since(2) is not None


def test_zone_delta_wire_round_trip():
    delta = ZoneDelta(
        7, DomainName("a.ctx.hns"), RRType.UNSPEC, (rec("a.ctx.hns", "ns=one"),)
    )
    value = delta_to_idl(delta)
    back = delta_from_idl(value)
    assert back.serial == 7
    assert str(back.name) == "a.ctx.hns"
    assert back.rtype is RRType.UNSPEC
    assert back.records[0].text == "ns=one"


# ----------------------------------------------------------------------
# Client/server IXFR exchange
# ----------------------------------------------------------------------
@pytest.fixture
def wired():
    env = Environment(seed=71)
    net = Internetwork(env)
    seg = net.add_segment(
        latency=ConstantLatency(CAL.wire_base_ms, CAL.wire_per_byte_ms)
    )
    client = net.add_host("client", seg)
    server_host = net.add_host("ns", seg)
    zone = Zone("hns")
    zone.add(rec("a.ctx.hns", "ns=one"))
    server = BindServer(
        server_host, zones=[zone], allow_dynamic_update=True, lookup_cost_ms=4.8
    )
    endpoint = server.listen()
    udp = DatagramTransport(net, retries=0, retry_timeout_ms=100)
    resolver = BindResolver(client, udp, endpoint)
    return env, zone, server, resolver, udp, client, endpoint


def test_ixfr_exchange_returns_delta(wired):
    env, zone, server, resolver, udp, client, endpoint = wired
    synced_at = zone.serial
    zone.add(rec("b.ctx.hns", "ns=two"))
    serial, full, deltas, records = run(
        env, resolver.incremental_zone_transfer("hns", synced_at)
    )
    assert serial == zone.serial
    assert not full
    assert records == []
    assert len(deltas) == 1 and deltas[0].records[0].text == "ns=two"
    assert env.stats.counters()[f"bind.{server.name}.ixfrs"] == 1


def test_ixfr_exchange_falls_back_to_snapshot(wired):
    env, zone, server, resolver, udp, client, endpoint = wired
    serial, full, deltas, records = run(
        env, resolver.incremental_zone_transfer("hns", 0)
    )
    assert full
    assert deltas == []
    assert records == zone.all_records()
    assert env.stats.counters()[f"bind.{server.name}.ixfr_fallbacks"] == 1


def test_ixfr_delta_is_cheaper_than_snapshot(wired):
    """The per-record streaming charge applies to the delta only."""
    env, zone, server, resolver, udp, client, endpoint = wired
    for i in range(50):
        zone.add(rec(f"x{i}.ctx.hns", f"ns=x{i}"))
    synced_at = zone.serial
    zone.add(rec("fresh.ctx.hns", "ns=fresh"))

    start = env.now
    run(env, resolver.incremental_zone_transfer("hns", synced_at))
    delta_ms = env.now - start

    start = env.now
    run(env, resolver.zone_transfer("hns"))
    full_ms = env.now - start
    assert delta_ms < full_ms / 3


# ----------------------------------------------------------------------
# Secondary refresh over IXFR (the satellite coverage)
# ----------------------------------------------------------------------
def make_replicated(journal_limit=512, replica_policy=ReplicaPolicy()):
    env = Environment(seed=72)
    net = Internetwork(env)
    seg = net.add_segment(
        latency=ConstantLatency(CAL.wire_base_ms, CAL.wire_per_byte_ms)
    )
    client = net.add_host("client", seg)
    primary_host = net.add_host("ns-primary", seg)
    secondary_host = net.add_host("ns-secondary", seg)
    zone = Zone("hns", journal_limit=journal_limit)
    zone.add(rec("a.ctx.hns", "ns=one"))
    primary = BindServer(
        primary_host, zones=[zone], allow_dynamic_update=True, lookup_cost_ms=4.8
    )
    primary_ep = primary.listen()
    udp = DatagramTransport(net, retries=0, retry_timeout_ms=100)
    secondary = SecondaryBindServer(
        secondary_host,
        primary_ep,
        origins=["hns"],
        transport=udp,
        refresh_ms=1_000,
        lookup_cost_ms=4.8,
        replica_policy=replica_policy,
    )
    secondary.listen()
    return env, zone, primary, secondary, client, udp


def replica_zone(secondary):
    return secondary.zone_named(secondary.zones[0].origin)


def test_refresh_serial_unchanged_no_transfer():
    env, zone, primary, secondary, client, udp = make_replicated()
    run(env, secondary.refresh_once())
    pulled = run(env, secondary.refresh_once())
    counters = env.stats.counters()
    assert pulled == 0
    assert counters[f"bind.{secondary.name}.refresh_skips"] == 1
    # Neither an incremental nor a full transfer happened.
    assert f"bind.{primary.name}.ixfrs" not in counters or (
        counters[f"bind.{primary.name}.ixfrs"] == 1  # the initial sync
    )
    assert counters.get(f"bind.{secondary.name}.ixfrs", 0) == 0


def test_refresh_applies_exact_delta_via_ixfr():
    env, zone, primary, secondary, client, udp = make_replicated()
    run(env, secondary.refresh_once())  # first sync: AXFR-style fallback
    counters = env.stats.counters()
    assert counters[f"bind.{secondary.name}.axfr_fallbacks"] == 1

    zone.add(rec("b.ctx.hns", "ns=two"))
    zone.replace("a.ctx.hns", RRType.UNSPEC, [rec("a.ctx.hns", "ns=NEW")])
    pulled = run(env, secondary.refresh_once())
    counters = env.stats.counters()
    assert pulled == 1
    assert counters[f"bind.{secondary.name}.ixfrs"] == 1
    assert counters[f"bind.{secondary.name}.axfr_fallbacks"] == 1  # unchanged
    # The replica now equals the primary, record for record.
    assert replica_zone(secondary).all_records() == zone.all_records()
    assert secondary.replica_serials[zone.origin] == zone.serial


def test_refresh_falls_back_to_axfr_when_journal_truncated():
    env, zone, primary, secondary, client, udp = make_replicated(journal_limit=2)
    run(env, secondary.refresh_once())
    for i in range(8):  # far beyond the journal window
        zone.add(rec(f"x{i}.ctx.hns", f"ns=x{i}"))
    pulled = run(env, secondary.refresh_once())
    counters = env.stats.counters()
    assert pulled == 1
    assert counters[f"bind.{secondary.name}.axfr_fallbacks"] == 2
    assert counters.get(f"bind.{secondary.name}.ixfrs", 0) == 0
    assert replica_zone(secondary).all_records() == zone.all_records()
    assert secondary.replica_serials[zone.origin] == zone.serial


def test_refresh_without_policy_keeps_axfr():
    env, zone, primary, secondary, client, udp = make_replicated(
        replica_policy=None
    )
    run(env, secondary.refresh_once())
    zone.add(rec("b.ctx.hns", "ns=two"))
    run(env, secondary.refresh_once())
    counters = env.stats.counters()
    assert counters.get(f"bind.{primary.name}.ixfrs", 0) == 0
    assert counters[f"bind.{primary.name}.xfers"] == 2
    assert replica_zone(secondary).all_records() == zone.all_records()


def test_refresh_handles_deletion_via_ixfr():
    env, zone, primary, secondary, client, udp = make_replicated()
    zone.add(rec("b.ctx.hns", "ns=two"))
    run(env, secondary.refresh_once())
    zone.remove("b.ctx.hns", RRType.UNSPEC)
    run(env, secondary.refresh_once())
    assert not replica_zone(secondary).contains("b.ctx.hns", RRType.UNSPEC)
    assert replica_zone(secondary).all_records() == zone.all_records()


# ----------------------------------------------------------------------
# Incremental cache preload
# ----------------------------------------------------------------------
def test_preload_cache_incremental(wired):
    env, zone, server, resolver, udp, client, endpoint = wired
    for i in range(40):
        zone.add(rec(f"x{i}.ctx.hns", f"ns=x{i}"))
    cache = ResolverCache(env, name="preload")
    preloader = BindResolver(
        client,
        udp,
        endpoint,
        cache=cache,
        replica_policy=ReplicaPolicy(),
    )
    start = env.now
    loaded = run(env, preloader.preload_cache("hns"))
    first_ms = env.now - start
    assert loaded == zone.record_count

    # Churn two keys, then re-preload: only the delta travels/installs.
    zone.add(rec("fresh.ctx.hns", "ns=fresh"))
    zone.remove("x0.ctx.hns", RRType.UNSPEC)
    start = env.now
    loaded = run(env, preloader.preload_cache("hns"))
    second_ms = env.now - start
    assert loaded == 1  # the one added record; the deletion carries none
    assert env.stats.counters()[f"bind.{preloader.name}.incremental_preloads"] == 1
    assert second_ms < first_ms / 3

    keys = {entry[0] for entry in cache.entries()}
    assert ("fresh.ctx.hns", RRType.UNSPEC.value) in keys
    assert ("x0.ctx.hns", RRType.UNSPEC.value) not in keys


def test_preload_cache_without_policy_always_full(wired):
    env, zone, server, resolver, udp, client, endpoint = wired
    cache = ResolverCache(env, name="preload")
    preloader = BindResolver(client, udp, endpoint, cache=cache)
    run(env, preloader.preload_cache("hns"))
    zone.add(rec("b.ctx.hns", "ns=two"))
    run(env, preloader.preload_cache("hns"))
    counters = env.stats.counters()
    assert counters[f"bind.{server.name}.xfers"] == 2
    assert counters.get(f"bind.{server.name}.ixfrs", 0) == 0
