"""The production write path: batched updates, leases, NOTIFY/IXFR."""

import pytest

from repro.bind import (
    BindResolver,
    BindServer,
    DomainName,
    NameNotFound,
    ResourceRecord,
    RRType,
    SecondaryBindServer,
    UpdateMode,
    UpdateOp,
    UpdateRefused,
    Zone,
)
from repro.bind.messages import STATUS_OK
from repro.core.errors import ContextNotFound
from repro.resolution import (
    DEFAULT_RESOLUTION_POLICY,
    PolicySet,
    UpdatePolicy,
)
from repro.workloads.scenarios import build_testbed


def run(env, gen):
    return env.run(until=env.process(gen))


def idle(env, ms):
    def sleeper():
        yield env.timeout(ms)

    run(env, sleeper())


def _replace_op(owner, value, lease_ms=0.0, ttl=3_600_000.0):
    return UpdateOp(
        UpdateMode.REPLACE,
        DomainName(owner),
        RRType.UNSPEC,
        (ResourceRecord(owner, RRType.UNSPEC, ttl, value),),
        lease_ms=lease_ms,
    )


def _meta_server(deployment, **kwargs):
    env, net, transport, client, server, endpoint = deployment
    meta = BindServer(
        server.host,
        zones=[Zone("hns")],
        allow_dynamic_update=True,
        name="meta",
        **kwargs,
    )
    ep = meta.listen(5353)
    return meta, BindResolver(client, transport, ep)


# ----------------------------------------------------------------------
# Batched updates
# ----------------------------------------------------------------------
def test_update_batch_applies_every_op_in_one_exchange(deployment):
    env = deployment[0]
    meta, resolver = _meta_server(deployment)

    ops = [_replace_op(f"svc{i}.hns", f"v={i}".encode()) for i in range(5)]
    serial, statuses = run(env, resolver.update_batch(ops))

    assert statuses == [STATUS_OK] * 5
    assert serial == meta.zones[0].serial
    counters = env.stats.counters()
    assert counters["bind.update.batches"] == 1
    assert counters["bind.update.ops"] == 5
    records = run(env, resolver.lookup("svc3.hns", RRType.UNSPEC))
    assert records[0].data == b"v=3"


def test_update_batch_refused_without_dynamic_update(deployment):
    env, net, transport, client, server, endpoint = deployment
    resolver = BindResolver(client, transport, endpoint)  # public server

    def scenario():
        with pytest.raises(UpdateRefused):
            yield from resolver.update_batch([_replace_op("x.gw.net", b"v=1")])
        return "done"

    assert run(env, scenario()) == "done"


def test_metastore_coalesces_concurrent_writes_last_writer_wins():
    """A write storm through one store flushes as a single batch, and a
    same-owner rewrite inside the window takes the later value."""
    testbed = build_testbed(seed=3, update_policy=UpdatePolicy())
    env = testbed.env
    store = testbed.make_metastore(
        testbed.client,
        policies=PolicySet(
            resolution=DEFAULT_RESOLUTION_POLICY, update=UpdatePolicy()
        ),
    )
    before = env.stats.counters().get("bind.update.batches", 0)

    def drive():
        writers = [
            env.process(store.register_context(f"ctx{i}", "BIND-cs"))
            for i in range(6)
        ]
        writers.append(env.process(store.register_context("ctx0", "CH-hcs")))
        yield env.all_of(writers)

    run(env, drive())
    counters = env.stats.counters()
    assert counters["bind.update.batches"] - before == 1
    assert counters["hns.meta.coalesced_writes"] == 6
    assert run(env, store.context_to_name_service("ctx0")) == "CH-hcs"
    assert run(env, store.context_to_name_service("ctx5")) == "BIND-cs"


# ----------------------------------------------------------------------
# Leases
# ----------------------------------------------------------------------
def test_lease_lapses_and_the_server_retracts_the_binding(deployment):
    env = deployment[0]
    meta, resolver = _meta_server(deployment)

    run(env, resolver.update_batch([_replace_op("box.hns", b"v=1", lease_ms=500.0)]))
    assert run(env, resolver.lookup("box.hns", RRType.UNSPEC))

    idle(env, 1_000.0)

    def scenario():
        with pytest.raises(NameNotFound):
            yield from resolver.lookup("box.hns", RRType.UNSPEC)
        return "done"

    assert run(env, scenario()) == "done"
    assert env.stats.counters()["bind.update.lease_expirations"] == 1


def test_lease_renewal_keeps_the_binding_alive_until_the_owner_dies():
    update = UpdatePolicy(invalidation="lease", lease_ms=1_000.0)
    testbed = build_testbed(seed=5, update_policy=update)
    env = testbed.env
    store = testbed.make_metastore(
        testbed.agent_host,
        policies=PolicySet(resolution=DEFAULT_RESOLUTION_POLICY, update=update),
    )
    reader = testbed.make_metastore(testbed.client)

    run(env, store.register_context("leased", "BIND-cs"))
    idle(env, 3_500.0)  # several lease lifetimes later...
    assert run(env, reader.context_to_name_service("leased")) == "BIND-cs"
    assert env.stats.counters()["nsm.lease.renewals"] >= 3
    assert env.stats.counters().get("bind.update.lease_expirations", 0) == 0

    store.stop_lease_renewal()
    idle(env, 2_500.0)  # ...the owner dies, and the lease lapses

    def scenario():
        with pytest.raises(ContextNotFound):
            yield from reader.context_to_name_service("leased")
        return "done"

    assert run(env, scenario()) == "done"
    assert env.stats.counters()["bind.update.lease_expirations"] >= 1


# ----------------------------------------------------------------------
# NOTIFY fan-out and IXFR pulls
# ----------------------------------------------------------------------
def test_notify_push_pulls_the_delta_into_a_secondary():
    update = UpdatePolicy(invalidation="notify")
    testbed = build_testbed(seed=7, update_policy=update)
    env = testbed.env
    secondary = SecondaryBindServer(
        testbed.hns_host,
        primary=testbed.meta_endpoint,
        origins=["hns"],
        transport=testbed.udp,
        refresh_ms=600_000.0,  # polling effectively off: NOTIFY drives it
        lookup_cost_ms=testbed.calibration.meta_bind_lookup_ms,
    )
    secondary.listen()
    run(env, secondary.refresh_once())  # initial AXFR sync
    assert secondary.is_synchronized
    assert run(env, secondary.subscribe_to_primary()) == 1

    store = testbed.make_metastore(
        testbed.agent_host,
        policies=PolicySet(resolution=DEFAULT_RESOLUTION_POLICY, update=update),
    )
    run(env, store.register_context("pushed", "BIND-cs"))
    idle(env, 100.0)

    primary_zone = testbed.meta_server.zones[0]
    replica = secondary.zone_named(DomainName("hns"))
    assert secondary.replica_serials[replica.origin] == primary_zone.serial
    pushed = replica.lookup(DomainName("pushed.ctx.hns"), RRType.UNSPEC)
    wanted = primary_zone.lookup(DomainName("pushed.ctx.hns"), RRType.UNSPEC)
    assert pushed[0].data == wanted[0].data
    counters = env.stats.counters()
    assert counters[f"bind.{secondary.name}.notify_pulls"] >= 1
    assert counters[f"bind.{secondary.name}.ixfrs"] >= 1
    assert counters["bind.update.notifies"] >= 1


def test_notify_push_updates_a_subscribed_resolver_cache():
    update = UpdatePolicy(invalidation="notify")
    testbed = build_testbed(seed=9, update_policy=update)
    env = testbed.env
    writer = testbed.make_metastore(
        testbed.agent_host,
        policies=PolicySet(resolution=DEFAULT_RESOLUTION_POLICY, update=update),
    )
    reader = testbed.make_metastore(testbed.client)

    assert run(env, reader.context_to_name_service("BIND-cs")) == "BIND-cs"
    run(env, reader.subscribe_invalidation())
    run(env, writer.register_context("BIND-cs", "CH-hcs"))
    idle(env, 100.0)

    # The rebinding is visible from the reader's cache alone: no new
    # round trip to the meta server.
    before = env.stats.counters().get("bind.meta-bind.requests", 0)
    assert run(env, reader.context_to_name_service("BIND-cs")) == "CH-hcs"
    assert env.stats.counters().get("bind.meta-bind.requests", 0) == before


# ----------------------------------------------------------------------
# Prototype equivalence
# ----------------------------------------------------------------------
def test_disabled_update_policy_reproduces_the_prototype_bit_for_bit():
    def digest(update_policy):
        testbed = build_testbed(seed=13, update_policy=update_policy)
        env = testbed.env
        env.trace.enabled = True
        store = testbed.make_metastore(
            testbed.client, update_policy=update_policy
        )

        def drive():
            yield from store.register_context("proto", "BIND-cs")
            ns = yield from store.context_to_name_service("proto")
            assert ns == "BIND-cs"

        run(env, drive())
        return env.trace.digest()

    assert digest(None) == digest(UpdatePolicy.disabled())
