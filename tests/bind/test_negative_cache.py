"""Negative caching of NXDOMAIN answers."""

import pytest

from repro.bind import BindResolver, NameNotFound, ResolverCache, ResourceRecord


def run(env, gen):
    return env.run(until=env.process(gen))


def make_resolver(deployment, negative_ttl_ms):
    env, net, transport, client, server, endpoint = deployment
    cache = ResolverCache(env)
    return (
        env,
        server,
        BindResolver(
            client,
            transport,
            endpoint,
            cache=cache,
            negative_ttl_ms=negative_ttl_ms,
        ),
    )


def expect_missing(env, resolver, name):
    def scenario():
        with pytest.raises(NameNotFound):
            yield from resolver.lookup(name)
        return "missing"

    assert run(env, scenario()) == "missing"


def test_negative_hit_avoids_remote_call(deployment):
    env, server, resolver = make_resolver(deployment, negative_ttl_ms=1_000)
    expect_missing(env, resolver, "ghost.cs.washington.edu")
    remote_after_first = env.stats.counters()["bind.resolver.remote_lookups"]
    expect_missing(env, resolver, "ghost.cs.washington.edu")
    assert env.stats.counters()["bind.resolver.remote_lookups"] == remote_after_first
    assert env.stats.counters()["bind.resolver.negative_hits"] == 1


def test_negative_hit_is_fast(deployment):
    env, server, resolver = make_resolver(deployment, negative_ttl_ms=1_000)
    expect_missing(env, resolver, "ghost.cs.washington.edu")
    start = env.now
    expect_missing(env, resolver, "ghost.cs.washington.edu")
    assert env.now - start < 1.0  # a probe, not a 27 ms round trip


def test_negative_entry_expires(deployment):
    env, server, resolver = make_resolver(deployment, negative_ttl_ms=200)
    expect_missing(env, resolver, "newhost.cs.washington.edu")
    # The name comes into existence natively...
    server.zones[0].add(
        ResourceRecord.a_record("newhost.cs.washington.edu", "128.95.1.77")
    )
    # ...still negatively cached inside the window...
    expect_missing(env, resolver, "newhost.cs.washington.edu")
    # ...but discoverable after it.
    env.run(until=env.now + 250)
    records = run(env, resolver.lookup("newhost.cs.washington.edu"))
    assert records[0].address == "128.95.1.77"


def test_disabled_by_default(deployment):
    env, server, resolver = make_resolver(deployment, negative_ttl_ms=0)
    expect_missing(env, resolver, "ghost.cs.washington.edu")
    expect_missing(env, resolver, "ghost.cs.washington.edu")
    assert env.stats.counters()["bind.resolver.remote_lookups"] == 2
    assert "bind.resolver.negative_hits" not in env.stats.counters()


def test_negative_and_positive_entries_coexist(deployment):
    env, server, resolver = make_resolver(deployment, negative_ttl_ms=1_000)
    records = run(env, resolver.lookup("fiji.cs.washington.edu"))
    expect_missing(env, resolver, "ghost.cs.washington.edu")
    again = run(env, resolver.lookup("fiji.cs.washington.edu"))
    assert {r.address for r in again} == {r.address for r in records}


def test_negative_ttl_validation(deployment):
    env, net, transport, client, server, endpoint = deployment
    with pytest.raises(ValueError):
        BindResolver(client, transport, endpoint, negative_ttl_ms=-1)
