"""Partition/heal at the discovery layer: diverge, then reconcile."""

from repro.discovery import BeaconService
from repro.net import DatagramTransport, Internetwork
from repro.resolution import DiscoveryPolicy
from repro.sim import ConstantLatency, Environment

POLICY = DiscoveryPolicy(
    beacon_period_ms=500.0,
    entry_ttl_ms=60_000.0,
    watchdog_multiplier=3.0,
)


def idle(env, ms):
    def sleeper():
        yield env.timeout(ms)

    env.run(until=env.process(sleeper()))


def test_views_diverge_under_partition_and_reconcile_after_heal():
    env = Environment(seed=19)
    net = Internetwork(env)
    seg = net.add_segment(latency=ConstantLatency(1.0, 0.0008))
    hosts = [net.add_host(f"lab{i}", seg) for i in range(4)]
    udp = DatagramTransport(net)
    beacons = [BeaconService(h, udp, POLICY) for h in hosts]
    beacons[0].announce("editor", 9001)
    beacons[2].announce("printer", 9002)

    def digests(services):
        return {s.cache.membership_digest() for s in services}

    idle(env, 3 * POLICY.beacon_period_ms + 100.0)
    assert len(digests(beacons)) == 1  # whole segment converged

    seg.partition(hosts[:2], hosts[2:])
    # Long enough for each side's watchdog to evict the other side.
    idle(env, POLICY.watchdog_deadline_ms() + 3 * POLICY.beacon_period_ms)
    left, right = digests(beacons[:2]), digests(beacons[2:])
    assert len(left) == 1 and len(right) == 1  # each side internally agrees
    assert left != right  # but the sides disagree
    assert beacons[0].cache.lookup("printer") is None  # evicted across the split
    assert beacons[0].cache.lookup("editor") is not None  # own side survives
    assert env.stats.counters().get("net.partition.drops", 0) > 0

    seg.heal()
    idle(env, 3 * POLICY.beacon_period_ms + 200.0)
    assert len(digests(beacons)) == 1  # fully reconciled, no authority needed
    assert beacons[0].cache.lookup("printer") is not None
