"""DiscoveryCache semantics and the BeaconService loops."""

import pytest

from repro.discovery import BeaconService, DiscoveryCache, PresenceBeacon
from repro.discovery.messages import SEGMENT_SECRET
from repro.net import DatagramTransport, Internetwork
from repro.resolution import DiscoveryPolicy
from repro.sim import ConstantLatency, Environment

POLICY = DiscoveryPolicy(
    beacon_period_ms=500.0,
    entry_ttl_ms=10_000.0,
    watchdog_multiplier=3.0,
)


def beacon_from(owner, incarnation, names, address="128.95.1.9"):
    return PresenceBeacon.signed(
        owner=owner,
        address=address,
        incarnation=incarnation,
        names={k: str(v) for k, v in names.items()},
        secret=SEGMENT_SECRET,
    )


def run(env, gen):
    return env.run(until=env.process(gen))


def idle(env, ms):
    def sleeper():
        yield env.timeout(ms)

    run(env, sleeper())


# ----------------------------------------------------------------------
# Pure cache semantics (no network)
# ----------------------------------------------------------------------
@pytest.fixture
def cache():
    env = Environment(seed=5)
    return env, DiscoveryCache(env, POLICY)


def test_observe_then_lookup(cache):
    env, view = cache
    assert view.observe(beacon_from("lab1", 1, {"printer": 9001})) == 1
    entry = view.lookup("Printer")  # names are case-folded
    assert entry is not None
    assert (entry.owner, entry.value, entry.incarnation) == ("lab1", "9001", 1)


def test_last_writer_wins_on_incarnation(cache):
    env, view = cache
    view.observe(beacon_from("lab1", 2, {"printer": 9001}))
    # An older claim from a different owner loses the write race.
    view.observe(beacon_from("lab2", 1, {"printer": 9002}, address="128.95.1.10"))
    assert view.lookup("printer").owner == "lab1"
    assert env.stats.counters().get("discovery.lww_rejects", 0) == 1
    # An at-least-as-new claim takes the name over.
    view.observe(beacon_from("lab2", 2, {"printer": 9002}, address="128.95.1.10"))
    assert view.lookup("printer").owner == "lab2"


def test_stale_beacon_dropped_whole(cache):
    env, view = cache
    view.observe(beacon_from("lab1", 3, {"printer": 9001}))
    # A beacon from an earlier incarnation of the same owner is a
    # delayed packet from a previous life: ignored entirely.
    assert view.observe(beacon_from("lab1", 2, {"printer": 8888})) == 0
    assert view.lookup("printer").value == "9001"
    assert env.stats.counters().get("discovery.stale_beacons", 0) == 1


def test_fresh_beacon_retracts_missing_names(cache):
    env, view = cache
    evicted = []
    view.on_evict(lambda entry, reason: evicted.append((entry.name, reason)))
    view.observe(beacon_from("lab1", 1, {"printer": 9001, "scanner": 9002}))
    view.observe(beacon_from("lab1", 1, {"printer": 9001}))
    assert view.lookup("scanner") is None
    assert evicted == [("scanner", "retracted")]
    assert env.stats.counters().get("discovery.evict.retracted", 0) == 1


def test_ttl_expiry_evicts_on_lookup(cache):
    env, view = cache
    view.observe(beacon_from("lab1", 1, {"printer": 9001}))
    idle(env, POLICY.entry_ttl_ms + 1.0)
    assert view.lookup("printer") is None
    assert view.peek("printer") is None  # gone, not just hidden
    assert env.stats.counters().get("discovery.evict.ttl", 0) == 1


def test_watchdog_lapse_is_a_miss_but_not_an_eviction(cache):
    env, view = cache
    view.observe(beacon_from("lab1", 1, {"printer": 9001}))
    idle(env, POLICY.watchdog_deadline_ms() + 1.0)
    # Lapsed: not served, but left for the sweep's suspect-probe.
    assert view.lookup("printer") is None
    assert view.peek("printer") is not None
    assert env.stats.counters().get("discovery.watchdog_misses", 0) == 1
    assert env.stats.counters().get("discovery.evictions", 0) == 0


def test_ttl_only_policy_serves_through_watchdog_lapse():
    env = Environment(seed=5)
    ttl_only = DiscoveryPolicy(
        beacon_period_ms=500.0, entry_ttl_ms=10_000.0, watchdog_multiplier=0.0
    )
    view = DiscoveryCache(env, ttl_only)
    view.observe(beacon_from("lab1", 1, {"printer": 9001}))
    idle(env, 5_000.0)  # far past where the watchdog would have fired
    assert view.lookup("printer") is not None


def test_refresh_pushes_deadlines_out(cache):
    env, view = cache
    view.observe(beacon_from("lab1", 1, {"printer": 9001}))
    idle(env, POLICY.watchdog_deadline_ms() + 1.0)
    entry = view.peek("printer")
    view.refresh(entry)
    assert view.lookup("printer") is entry
    assert not entry.suspect


def test_membership_digest_tracks_view_content(cache):
    env, view = cache
    other = DiscoveryCache(env, POLICY)
    assert view.membership_digest() == other.membership_digest()  # both empty
    beacon = beacon_from("lab1", 1, {"printer": 9001})
    view.observe(beacon)
    assert view.membership_digest() != other.membership_digest()
    other.observe(beacon)
    assert view.membership_digest() == other.membership_digest()


# ----------------------------------------------------------------------
# BeaconService over the wire
# ----------------------------------------------------------------------
@pytest.fixture
def world():
    env = Environment(seed=11)
    net = Internetwork(env)
    seg = net.add_segment(latency=ConstantLatency(1.0, 0.0008))
    hosts = [net.add_host(f"lab{i}", seg) for i in range(4)]
    udp = DatagramTransport(net)
    return env, net, seg, hosts, udp


def test_beacons_populate_every_listener(world):
    env, net, seg, hosts, udp = world
    beacons = [BeaconService(h, udp, POLICY) for h in hosts]
    beacons[1].announce("printer", 9001)
    idle(env, 3 * POLICY.beacon_period_ms + 100.0)
    for service in beacons:  # including the owner's own view
        entry = service.cache.lookup("printer")
        assert entry is not None and entry.owner == "lab1"


def test_wrong_secret_beacons_are_rejected(world):
    env, net, seg, hosts, udp = world
    listener = BeaconService(hosts[0], udp, POLICY)
    rogue = BeaconService(hosts[1], udp, POLICY, secret="not-the-segment-key")
    rogue.announce("printer", 9001)
    idle(env, 3 * POLICY.beacon_period_ms + 100.0)
    assert listener.cache.lookup("printer") is None
    assert env.stats.counters().get("discovery.bad_signatures", 0) >= 1


def test_crashed_owner_is_probed_then_evicted(world):
    env, net, seg, hosts, udp = world
    beacons = [BeaconService(h, udp, POLICY) for h in hosts]
    beacons[1].announce("printer", 9001)
    idle(env, 3 * POLICY.beacon_period_ms + 100.0)
    hosts[1].crash()  # silent: no retraction reaches the segment
    # Watchdog deadline + one sweep + the probe timeout is enough.
    idle(env, POLICY.watchdog_deadline_ms() + 2 * POLICY.beacon_period_ms)
    assert beacons[0].cache.lookup("printer") is None
    counters = env.stats.counters()
    assert counters.get("discovery.probes", 0) >= 1
    assert counters.get("discovery.evict.probe_failed", 0) >= 1


def test_lost_beacons_alone_refresh_instead_of_evict(world):
    env, net, seg, hosts, udp = world
    listener = BeaconService(hosts[0], udp, POLICY)
    # The owner beacons far too rarely for the listener's watchdog, but
    # it is alive and answers the suspect-probe: refreshed, not dropped.
    quiet = DiscoveryPolicy(
        beacon_period_ms=60_000.0, entry_ttl_ms=120_000.0, watchdog_multiplier=3.0
    )
    owner = BeaconService(hosts[1], udp, quiet)
    owner.announce("printer", 9001)
    listener.cache.observe(
        beacon_from("lab1", 1, {"printer": 9001}, address=str(hosts[1].address))
    )
    idle(env, POLICY.watchdog_deadline_ms() + 2 * POLICY.beacon_period_ms)
    assert listener.cache.lookup("printer") is not None
    counters = env.stats.counters()
    assert counters.get("discovery.probe_refreshes", 0) >= 1
    assert counters.get("discovery.evictions", 0) == 0


def test_restart_bumps_incarnation_and_reconciles(world):
    env, net, seg, hosts, udp = world
    beacons = [BeaconService(h, udp, POLICY) for h in hosts]
    beacons[1].announce("printer", 9001)
    idle(env, 3 * POLICY.beacon_period_ms + 100.0)
    hosts[1].crash()
    idle(env, POLICY.watchdog_deadline_ms() + 2 * POLICY.beacon_period_ms)
    hosts[1].restart()
    beacons[1].restart()
    assert beacons[1].incarnation == 2
    idle(env, 3 * POLICY.beacon_period_ms + 100.0)
    entry = beacons[0].cache.lookup("printer")
    assert entry is not None and entry.incarnation == 2


def test_retract_propagates_on_next_beacon(world):
    env, net, seg, hosts, udp = world
    beacons = [BeaconService(h, udp, POLICY) for h in hosts]
    beacons[1].announce("printer", 9001)
    idle(env, 3 * POLICY.beacon_period_ms + 100.0)
    assert beacons[1].retract("printer")
    idle(env, 2 * POLICY.beacon_period_ms + 100.0)
    assert beacons[0].cache.lookup("printer") is None
    assert env.stats.counters().get("discovery.evict.retracted", 0) >= 1


def test_disabled_policy_runs_no_loops(world):
    env, net, seg, hosts, udp = world
    service = BeaconService(hosts[0], udp, DiscoveryPolicy.disabled())
    service.announce("printer", 9001)
    idle(env, 5_000.0)
    assert env.stats.counters().get("discovery.beacons_sent", 0) == 0
    # The co-resident owner service still answers broadcast NameQueries.
    assert service.owner_service.owns("printer")
