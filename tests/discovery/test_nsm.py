"""DiscoveryNsm: view hits, re-query fallback, and liveness discipline."""

import pytest

from repro.core import HNSName
from repro.discovery import BeaconService, DiscoveryNsm
from repro.net import DatagramTransport, Internetwork
from repro.resolution import DiscoveryPolicy, FastPathPolicy
from repro.sim import ConstantLatency, Environment

POLICY = DiscoveryPolicy(
    beacon_period_ms=500.0,
    entry_ttl_ms=10_000.0,
    watchdog_multiplier=3.0,
)

PRINTER = HNSName("adhoc", "printer")


def run(env, gen):
    return env.run(until=env.process(gen))


def idle(env, ms):
    def sleeper():
        yield env.timeout(ms)

    run(env, sleeper())


def make_world(policy=POLICY, seed=23, host_count=4):
    env = Environment(seed=seed)
    net = Internetwork(env)
    seg = net.add_segment(latency=ConstantLatency(1.0, 0.0008))
    hosts = [net.add_host(f"lab{i}", seg) for i in range(host_count)]
    udp = DatagramTransport(net)
    beacons = [BeaconService(h, udp, policy) for h in hosts]
    return env, hosts, beacons


def test_view_hit_serves_locally(seed=23):
    env, hosts, beacons = make_world()
    beacons[1].announce("printer", 9001)
    idle(env, 3 * POLICY.beacon_period_ms + 100.0)
    nsm = DiscoveryNsm(beacons[0])
    result = run(env, nsm.query(PRINTER))
    assert result.value["owner"] == "lab1"
    assert result.value["port"] == "9001"
    assert result.value["incarnation"] == 1
    counters = env.stats.counters()
    assert counters.get("discovery.view_hits", 0) == 1
    assert counters.get("discovery.requeries", 0) == 0


def test_cold_miss_falls_back_to_broadcast_requery():
    env, hosts, beacons = make_world()
    beacons[1].announce("printer", 9001)
    # Query before the first beacon period: the view is still empty,
    # but the owner's co-resident NameOwnerService answers a broadcast.
    nsm = DiscoveryNsm(beacons[0])
    result = run(env, nsm.query(PRINTER))
    assert result.value["owner"] == "lab1"
    assert result.value["incarnation"] == 0  # a one-shot answer carries none
    assert env.stats.counters().get("discovery.requeries", 0) == 1


def test_miss_without_requery_raises():
    policy = DiscoveryPolicy(
        beacon_period_ms=500.0,
        entry_ttl_ms=10_000.0,
        watchdog_multiplier=3.0,
        requery_on_miss=False,
    )
    env, hosts, beacons = make_world(policy)
    nsm = DiscoveryNsm(beacons[0])
    with pytest.raises(LookupError):
        run(env, nsm.query(PRINTER))
    assert env.stats.counters().get("discovery.view_misses", 0) == 1


def test_disabled_policy_degrades_to_one_shot_locator():
    env, hosts, beacons = make_world(DiscoveryPolicy.disabled())
    beacons[1].announce("printer", 9001)
    nsm = DiscoveryNsm(beacons[0])
    idle(env, 2_000.0)
    result = run(env, nsm.query(PRINTER))
    assert result.value["owner"] == "lab1"
    # No beacon machinery ran at all: every resolution is the broadcast.
    assert env.stats.counters().get("discovery.beacons_sent", 0) == 0


def test_result_ttl_never_exceeds_liveness_deadline():
    env, hosts, beacons = make_world()
    beacons[1].announce("printer", 9001)
    idle(env, 3 * POLICY.beacon_period_ms + 100.0)
    nsm = DiscoveryNsm(beacons[0])
    run(env, nsm.query(PRINTER))
    key = nsm._cache_key(PRINTER, {})
    entry = nsm.cache._entries.get(key)  # type: ignore[union-attr]
    assert entry is not None
    view_entry = beacons[0].cache.lookup("printer")
    assert entry.expires_at <= view_entry.watchdog_deadline + 1e-9


def test_liveness_eviction_invalidates_resolver_cache():
    env, hosts, beacons = make_world()
    beacons[1].announce("printer", 9001)
    idle(env, 3 * POLICY.beacon_period_ms + 100.0)
    nsm = DiscoveryNsm(beacons[0])
    run(env, nsm.query(PRINTER))  # warm the resolver cache
    hosts[1].crash()
    idle(env, POLICY.watchdog_deadline_ms() + 2 * POLICY.beacon_period_ms)
    assert env.stats.counters().get("discovery.nsm_invalidations", 0) >= 1
    # The dead binding is gone everywhere: a fresh query re-queries the
    # wire, gets silence, and fails — it never serves the corpse.
    with pytest.raises(LookupError):
        run(env, nsm.query(PRINTER))


def test_lapsed_entry_mid_flight_coalesced_queries_fail_over():
    """The watchdog-vs-TTL race, mid-flight: an entry whose beacons
    lapse while a coalesced FindNSM is outstanding must fail over to
    the broadcast re-query (which correctly finds silence), not serve
    the evicted binding via single-flight or serve-stale."""
    env, hosts, beacons = make_world()
    beacons[1].announce("printer", 9001)
    idle(env, 3 * POLICY.beacon_period_ms + 100.0)
    nsm = DiscoveryNsm(beacons[0], fast_path=FastPathPolicy())
    run(env, nsm.query(PRINTER))  # warm: view hit, resolver cache filled
    hosts[1].crash()
    # Advance into the lapse window: past the watchdog deadline (the
    # resolver-cache entry expired with it — its TTL was capped to the
    # liveness deadline) but before the sweep has evicted the entry.
    view_entry = beacons[0].cache.peek("printer")
    assert view_entry is not None
    idle(env, max(0.0, view_entry.watchdog_deadline - env.now) + 1.0)
    assert beacons[0].cache.peek("printer") is not None  # not yet swept
    assert beacons[0].cache.lookup("printer") is None  # but lapsed

    outcomes = []

    def one_query():
        try:
            result = yield from nsm.query(PRINTER)
        except LookupError:
            outcomes.append(None)
        else:
            outcomes.append(result.value["owner"])

    def crowd():
        yield env.all_of([env.process(one_query()) for _ in range(6)])

    requeries_before = env.stats.counters().get("discovery.requeries", 0)
    run(env, crowd())
    assert outcomes == [None] * 6, f"served a dead binding: {outcomes}"
    # Single-flight held: one leader re-queried the wire, the five
    # followers parked on its flight and saw the same failure.
    requeries = env.stats.counters().get("discovery.requeries", 0)
    assert requeries - requeries_before == 1


def test_joins_the_confederation_via_find_nsm_and_stub():
    """Registered in the meta zone with port 0, the ad-hoc NSM is
    returned by HNS.find_nsm as a local binding and called through
    NsmStub unchanged."""
    from repro.core.admin import HnsAdministrator
    from repro.core.nsm import NsmStub
    from repro.workloads.adhoc import ADHOC_CONTEXT
    from repro.workloads.scenarios import SRV_CONTEXT, build_testbed

    testbed = build_testbed(seed=41)
    env = testbed.env
    policy = DiscoveryPolicy(beacon_period_ms=500.0, watchdog_multiplier=3.0)
    client_beacon = BeaconService(testbed.client, testbed.udp, policy)
    june_beacon = BeaconService(testbed.june, testbed.udp, policy)
    june_beacon.announce("buildcache", 9100)
    admin = HnsAdministrator(testbed.make_metastore(testbed.meta_host))
    nsm = DiscoveryNsm(client_beacon)

    def register():
        yield from admin.register_name_service(
            "adhoc", "adhoc", testbed.client.name, 0
        )
        yield from admin.register_context(ADHOC_CONTEXT, "adhoc")
        yield from admin.register_nsm(
            nsm_name=nsm.name,
            query_class="AdHocService",
            name_service="adhoc",
            host_name=f"{testbed.client.name}.cs.washington.edu",
            host_context=SRV_CONTEXT,
            program=f"nsm.{nsm.name}",
            suite="sunrpc",
            port=0,
        )

    run(env, register())
    hns = testbed.make_hns(testbed.client)
    hns.link_local_nsm(nsm)
    stub = NsmStub(testbed.client)
    stub.link_local(nsm)
    idle(env, 2_000.0)  # let beacons seed the view

    def resolve():
        binding = yield from hns.find_nsm(
            HNSName(ADHOC_CONTEXT, "buildcache"), "AdHocService"
        )
        result = yield from stub.call(binding, HNSName(ADHOC_CONTEXT, "buildcache"))
        return result

    result = run(env, resolve())
    assert result.value["owner"] == testbed.june.name
    assert result.value["port"] == "9100"
