"""DiscoveryPolicy validation, derived values, and the disabled mode."""

import dataclasses

import pytest

from repro.resolution import (
    DEFAULT_DISCOVERY_POLICY,
    DiscoveryPolicy,
    PolicySet,
)


def test_defaults_are_live():
    policy = DEFAULT_DISCOVERY_POLICY
    assert policy.enabled
    assert policy.liveness
    assert policy.watchdog_deadline_ms() == (
        policy.beacon_period_ms * policy.watchdog_multiplier
    )


def test_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        DEFAULT_DISCOVERY_POLICY.beacon_period_ms = 1.0  # type: ignore[misc]


@pytest.mark.parametrize(
    "kwargs",
    [
        {"beacon_period_ms": 0.0},
        {"beacon_jitter": -0.1},
        {"beacon_jitter": 1.0},
        {"entry_ttl_ms": 0.0},
        {"watchdog_multiplier": -1.0},
        {"probe_timeout_ms": 0.0},
        {"broadcast_wait_ms": 0.0},
    ],
)
def test_validation_rejects_bad_knobs(kwargs):
    with pytest.raises(ValueError):
        DiscoveryPolicy(**kwargs)


def test_zero_multiplier_disables_liveness_only():
    ttl_only = DiscoveryPolicy(watchdog_multiplier=0.0)
    assert ttl_only.enabled
    assert not ttl_only.liveness
    assert ttl_only.watchdog_deadline_ms() == 0.0


def test_disabled_degrades_to_the_broadcast_locator():
    off = DiscoveryPolicy.disabled()
    assert not off.enabled
    assert not off.liveness
    # The degraded mode still answers queries — via one-shot broadcast.
    assert off.requery_on_miss


def test_policyset_carries_a_discovery_slot():
    # None means "use the subsystem default", as for the other axes.
    assert PolicySet().discovery is None
    custom = PolicySet(discovery=DiscoveryPolicy.disabled())
    assert not custom.discovery.enabled
