"""Harness: tables, experiment runner, calibration coherence."""

import pytest

from repro.harness import (
    ComparisonTable,
    DEFAULT_CALIBRATION,
    format_table,
    run_simulation,
)
from repro.sim import Environment


def test_format_table_alignment():
    text = format_table(["a", "bb"], [["1", "222"], ["33", "4"]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_comparison_table_deviation():
    table = ComparisonTable("Test", unit="ms")
    row = table.add("x", paper=100, measured=104)
    assert row.deviation_pct == pytest.approx(4.0)
    table.add("y", paper=200, measured=190)
    assert table.max_abs_deviation_pct() == pytest.approx(5.0)
    rendered = table.render()
    assert "paper (ms)" in rendered and "+4.0" in rendered
    table.check(tolerance_pct=6)
    with pytest.raises(AssertionError):
        table.check(tolerance_pct=4.5)


def test_comparison_table_zero_paper_value():
    table = ComparisonTable("Z")
    row = table.add("zero", paper=0, measured=5)
    assert row.deviation_pct == 0.0
    assert ComparisonTable("empty").max_abs_deviation_pct() == 0.0


def test_run_simulation():
    def builder(env):
        yield env.timeout(25)
        env.stats.counter("ticks").increment()
        return "done"

    result = run_simulation(builder, seed=1)
    assert result.value == "done"
    assert result.elapsed_ms == 25.0
    assert result.counters == {"ticks": 1}


def test_run_simulation_with_existing_env():
    env = Environment(seed=2)
    env.run(until=10)

    def builder(env):
        yield env.timeout(5)
        return env.now

    result = run_simulation(builder, env=env)
    assert result.value == 15.0
    assert result.elapsed_ms == 5.0


def test_calibration_is_frozen_and_overridable():
    import dataclasses

    with pytest.raises(dataclasses.FrozenInstanceError):
        DEFAULT_CALIBRATION.wire_base_ms = 5  # type: ignore[misc]
    variant = dataclasses.replace(DEFAULT_CALIBRATION, meta_bind_lookup_ms=99)
    assert variant.meta_bind_lookup_ms == 99
    assert DEFAULT_CALIBRATION.meta_bind_lookup_ms != 99


def test_calibration_derived_cache_hit_matches_table_3_2():
    assert DEFAULT_CALIBRATION.derived_cache_hit_ms(1) == pytest.approx(0.83)
    assert DEFAULT_CALIBRATION.derived_cache_hit_ms(6) == pytest.approx(1.22)


def test_clearinghouse_cost_decomposition_sums_to_about_156():
    cal = DEFAULT_CALIBRATION
    server_side = (
        cal.ch_auth_cpu_ms + cal.ch_auth_disk_ms + cal.ch_data_disk_ms + cal.ch_process_ms
    )
    assert 145 < server_side < 156  # the rest is wire + marshalling


def test_custom_calibration_flows_through():
    """An ablated calibration (free meta lookups) changes measured costs."""
    import dataclasses

    from repro.core import Arrangement, HNSName
    from repro.workloads import build_stack, build_testbed

    fast = dataclasses.replace(
        DEFAULT_CALIBRATION, hrpc_meta_call_ms=0.0, meta_bind_lookup_ms=0.1
    )
    tb = build_testbed(seed=6, calibration=fast)
    stack = build_stack(tb, Arrangement.ALL_LOCAL)
    stack.flush_all_caches()
    env = tb.env
    start = env.now
    env.run(
        until=env.process(
            stack.importer.import_binding(
                "DesiredService", HNSName("BIND-cs", "fiji.cs.washington.edu")
            )
        )
    )
    assert env.now - start < 460  # cheaper than the calibrated cold path
