"""Documentation stays consistent with the code it describes."""

import pathlib
import re


ROOT = pathlib.Path(__file__).resolve().parents[2]


def read(name):
    return (ROOT / name).read_text(encoding="utf-8")


def test_required_documents_exist():
    for name in (
        "README.md",
        "DESIGN.md",
        "EXPERIMENTS.md",
        "docs/architecture.md",
        "docs/calibration.md",
    ):
        assert (ROOT / name).is_file(), name


def test_readme_examples_all_exist():
    readme = read("README.md")
    for match in re.findall(r"examples/([a-z_]+\.py)", readme):
        assert (ROOT / "examples" / match).is_file(), match


def test_design_bench_targets_all_exist():
    design = read("DESIGN.md")
    for match in set(re.findall(r"benchmarks/(bench_[a-z0-9_]+\.py)", design)):
        assert (ROOT / "benchmarks" / match).is_file(), match


def test_experiments_references_real_benches_and_tests():
    text = read("EXPERIMENTS.md")
    for match in set(re.findall(r"benchmarks/(bench_[a-z0-9_]+\.py)", text)):
        assert (ROOT / "benchmarks" / match).is_file(), match
    for match in set(re.findall(r"tests/([a-z_/]+\.py)", text)):
        assert (ROOT / "tests" / match).is_file(), match


def test_readme_packages_all_importable():
    import importlib

    readme = read("README.md")
    for match in set(re.findall(r"^repro\.[a-z_.]+", readme, flags=re.M)):
        importlib.import_module(match.rstrip("."))


def test_every_source_module_has_a_docstring():
    import ast

    missing = []
    for path in sorted((ROOT / "src").rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        if not ast.get_docstring(tree):
            missing.append(str(path.relative_to(ROOT)))
    assert not missing, missing


def test_every_public_class_and_function_documented():
    """Public API surface (non-underscore, module level) carries docs."""
    import ast

    undocumented = []
    for path in sorted((ROOT / "src").rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.ClassDef)):
                if node.name.startswith("_"):
                    continue
                if not ast.get_docstring(node):
                    undocumented.append(
                        f"{path.relative_to(ROOT)}:{node.name}"
                    )
    assert not undocumented, undocumented


def test_paper_numbers_in_experiments_match_benchmarks():
    """The headline constants quoted in EXPERIMENTS.md appear in the
    benchmark assertions (no silent drift)."""
    experiments = read("EXPERIMENTS.md")
    table31 = read("benchmarks/bench_table_3_1.py") + read("benchmarks/conftest.py")
    for figure in ("460", "180", "104", "547", "261", "181"):
        assert figure in experiments
        assert figure in table31
