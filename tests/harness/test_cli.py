"""The command-line interface."""

import pytest

from repro.cli import main


def test_import_command(capsys):
    assert main(["import", "DesiredService", "BIND-cs::fiji.cs.washington.edu"]) == 0
    out = capsys.readouterr().out
    assert "DesiredService" in out
    assert "sunrpc" in out
    assert "simulated ms" in out


def test_resolve_hostaddress(capsys):
    assert main(["resolve", "BIND-cs::fiji.cs.washington.edu", "HostAddress"]) == 0
    out = capsys.readouterr().out
    assert "address:" in out
    assert "HostAddress-BIND-cs" in out


def test_resolve_mailbox_on_clearinghouse(capsys):
    assert main(["resolve", "CH-hcs::levy:hcs:uw", "MailboxLocation"]) == 0
    out = capsys.readouterr().out
    assert "mail_host:" in out and "dlion:hcs:uw" in out


def test_resolve_binding_with_service(capsys):
    assert (
        main(
            [
                "resolve",
                "CH-hcs::dlion:hcs:uw",
                "HRPCBinding",
                "--service",
                "PrintService",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "courier" in out


def test_table31_command(capsys):
    assert main(["table31"]) == 0
    out = capsys.readouterr().out
    assert "Table 3.1" in out
    assert "[Client, HNS, NSMs]" in out
    assert "460" in out


def test_trace_command(capsys):
    assert main(["trace", "DesiredService", "BIND-cs::fiji.cs.washington.edu"]) == 0
    out = capsys.readouterr().out
    assert "FindNSM" in out
    assert "=> HRPCBinding" in out


def test_seed_flag(capsys):
    assert main(["--seed", "9", "import", "DesiredService",
                 "BIND-cs::fiji.cs.washington.edu"]) == 0


def test_bad_query_class_rejected():
    with pytest.raises(SystemExit):
        main(["resolve", "BIND-cs::x", "Astrology"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])
