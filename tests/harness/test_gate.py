"""The perf-regression gate: digests pin trajectories, p99 pins tails.

The fixtures build small schema-v2 artifacts by hand and doctor them
the way a real regression would: a changed digest, a fattened p99, a
dropped availability.  The gate must fail on each, pass on an
identical pair, and ignore every wall-clock field.
"""

import copy
import json

import pytest

from repro.harness.gate import (
    Violation,
    compare_artifacts,
    load_artifact,
    main,
    run_gate,
)


def artifact(smoke=True):
    """A minimal schema-v2 ablation artifact with two runs."""
    return {
        "schema_version": 2,
        "bench": "ablation_toy",
        "grid": "toy",
        "smoke": smoke,
        "jobs": 1,
        "cpus": 1,
        "wall_s": 1.0,
        "vs_baseline": None,
        "runs": [
            {
                "key": "baseline",
                "knobs": {"k": "on"},
                "seed": 1,
                "status": "ok",
                "digest": "aaa111",
                "sim_ms": 50.0,
                "wall_s": 0.1,
                "metrics": {"p99_ms": 10.0, "availability": 1.0},
            },
            {
                "key": "k=off",
                "knobs": {"k": "off"},
                "seed": 2,
                "status": "ok",
                "digest": "bbb222",
                "sim_ms": 60.0,
                "wall_s": 0.1,
                "metrics": {"p99_ms": 40.0, "availability": 0.98},
            },
        ],
        "importance": {},
    }


def test_identical_artifacts_pass():
    assert compare_artifacts("a.json", artifact(), artifact()) == []


def test_wall_clock_changes_never_violate():
    fresh = artifact()
    fresh["wall_s"] = 99.0
    fresh["jobs"] = 16
    fresh["cpus"] = 16
    fresh["runs"][0]["wall_s"] = 42.0
    assert compare_artifacts("a.json", fresh, artifact()) == []


def test_p99_regression_beyond_tolerance_fails():
    fresh = artifact()
    fresh["runs"][0]["metrics"]["p99_ms"] = 11.5  # +15% > 10%
    violations = compare_artifacts("a.json", fresh, artifact())
    assert [v.kind for v in violations] == ["p99"]
    assert "regressed" in violations[0].message
    # The same doctored value passes under a looser bar.
    assert (
        compare_artifacts("a.json", fresh, artifact(), p99_tolerance_pct=20.0)
        == []
    )


def test_p99_within_tolerance_and_improvements_pass():
    fresh = artifact()
    fresh["runs"][0]["metrics"]["p99_ms"] = 10.9  # +9% < 10%
    fresh["runs"][1]["metrics"]["p99_ms"] = 5.0  # improvement
    assert compare_artifacts("a.json", fresh, artifact()) == []


def test_availability_drop_fails_one_sided():
    fresh = artifact()
    fresh["runs"][1]["metrics"]["availability"] = 0.80  # -18%
    violations = compare_artifacts("a.json", fresh, artifact())
    assert [v.kind for v in violations] == ["availability"]
    # A rise never violates.
    fresh["runs"][1]["metrics"]["availability"] = 1.0
    assert compare_artifacts("a.json", fresh, artifact()) == []


def test_digest_change_fails_even_with_identical_metrics():
    fresh = artifact()
    fresh["runs"][1]["digest"] = "ccc333"
    violations = compare_artifacts("a.json", fresh, artifact())
    assert [v.kind for v in violations] == ["digest"]
    assert "trajectory changed" in violations[0].message


def test_missing_run_fails():
    fresh = artifact()
    del fresh["runs"][1]
    kinds = {v.kind for v in compare_artifacts("a.json", fresh, artifact())}
    assert "missing" in kinds


def test_smoke_flag_mismatch_is_a_schema_violation():
    violations = compare_artifacts(
        "a.json", artifact(smoke=True), artifact(smoke=False)
    )
    assert [v.kind for v in violations] == ["schema"]
    assert "smoke" in violations[0].message


def test_nan_metrics_are_skipped():
    fresh, base = artifact(), artifact()
    fresh["runs"][0]["metrics"]["p99_ms"] = float("nan")
    base["runs"][0]["metrics"]["p99_ms"] = float("nan")
    assert compare_artifacts("a.json", fresh, base) == []


def test_load_artifact_rejects_other_schema_versions(tmp_path):
    path = tmp_path / "BENCH_ablation_x.json"
    path.write_text(json.dumps({"schema_version": 1}))
    with pytest.raises(ValueError):
        load_artifact(path)


def _write_dirs(tmp_path, fresh, baseline, name="BENCH_ablation_toy.json"):
    fresh_dir = tmp_path / "fresh"
    base_dir = tmp_path / "base"
    fresh_dir.mkdir()
    base_dir.mkdir()
    (fresh_dir / name).write_text(json.dumps(fresh))
    (base_dir / name).write_text(json.dumps(baseline))
    return fresh_dir, base_dir


def test_run_gate_end_to_end_pass_and_fail(tmp_path):
    fresh_dir, base_dir = _write_dirs(tmp_path, artifact(), artifact())
    violations, compared = run_gate(
        fresh_dir, base_dir, pattern="BENCH_ablation_*.json"
    )
    assert violations == [] and compared == ["BENCH_ablation_toy.json"]
    assert main(["--fresh", str(fresh_dir), "--baseline", str(base_dir)]) == 0

    doctored = copy.deepcopy(artifact())
    doctored["runs"][0]["metrics"]["p99_ms"] = 20.0  # +100%
    (tmp_path / "round2").mkdir()
    fresh_dir2, base_dir2 = _write_dirs(
        tmp_path / "round2", artifact(), doctored
    )
    violations, _ = run_gate(
        fresh_dir2, base_dir2, pattern="BENCH_ablation_*.json"
    )
    # Baseline p99 is 20, fresh is 10: an improvement, passes.
    assert violations == []
    # Flip the direction: fresh regressed vs committed baseline.
    (fresh_dir2 / "BENCH_ablation_toy.json").write_text(json.dumps(doctored))
    (base_dir2 / "BENCH_ablation_toy.json").write_text(json.dumps(artifact()))
    assert (
        main(["--fresh", str(fresh_dir2), "--baseline", str(base_dir2)]) == 1
    )


def test_empty_intersection_is_a_violation(tmp_path):
    fresh_dir = tmp_path / "fresh"
    base_dir = tmp_path / "base"
    fresh_dir.mkdir()
    base_dir.mkdir()
    violations, compared = run_gate(fresh_dir, base_dir)
    assert compared == []
    assert [v.kind for v in violations] == ["schema"]
    assert "compared nothing" in violations[0].message


def test_violation_render_is_one_line():
    line = Violation("a.json", "runs.0.p99_ms", "p99", "regressed").render()
    assert line == "a.json: [p99] runs.0.p99_ms: regressed"
