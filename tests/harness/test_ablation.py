"""The ablation engine: expansion, fan-out determinism, importance.

Everything here drives the ``toy`` grid (seconds-free, a few dozen
events per run) so the whole file stays tier-1 fast while still
exercising the real :class:`~repro.harness.ablation.AblationStudy`
paths — including a real two-worker ``ProcessPoolExecutor`` and a
runner that raises on purpose.
"""

import pytest

from repro.harness.ablation import (
    AblationStudy,
    BASELINE_KEY,
    GridDef,
    Knob,
    RunResult,
    RunSpec,
    derive_seed,
    dump_payload,
    strip_wall_clock,
    study_payload,
)
from repro.harness.grids import TOY_GRID


def _result(spec, metrics, status="ok"):
    return RunResult(
        spec=spec,
        status=status,
        metrics=metrics,
        digest="d" if status == "ok" else None,
        sim_ms=1.0,
        wall_s=0.01,
    )


# ----------------------------------------------------------------------
# Knob / GridDef validation
# ----------------------------------------------------------------------
def test_knob_rejects_baseline_in_variants():
    with pytest.raises(ValueError):
        Knob("k", baseline="a", variants=("a", "b"))


def test_knob_rejects_duplicate_variants():
    with pytest.raises(ValueError):
        Knob("k", baseline="a", variants=("b", "b"))


def test_grid_rejects_duplicate_knob_names():
    knob = Knob("k", baseline="a", variants=("b",))
    with pytest.raises(ValueError):
        GridDef(name="g", knobs=(knob, knob), runner="m:f")


# ----------------------------------------------------------------------
# Expansion
# ----------------------------------------------------------------------
def test_expand_is_baseline_then_one_offs_with_no_duplicates():
    study = AblationStudy(TOY_GRID)
    specs = study.expand()
    keys = [spec.key for spec in specs]
    assert keys == [
        BASELINE_KEY,
        "ticks=many",
        "mode=jittered",
        "mode=boom",
    ]
    # Every one-off flips exactly one knob off the baseline.
    baseline = dict(specs[0].knobs)
    for spec in specs[1:]:
        assignment = dict(spec.knobs)
        assert sum(assignment[k] != baseline[k] for k in baseline) == 1
    # Assignments never repeat.
    fingerprints = [tuple(sorted(spec.knobs)) for spec in specs]
    assert len(set(fingerprints)) == len(specs)


def test_expand_full_grid_covers_the_cartesian_product_once():
    study = AblationStudy(TOY_GRID)
    specs = study.expand(full_grid=True)
    # 2 ticks x 3 modes = 6 unique assignments; baseline + 3 one-offs
    # already cover 4 of them, the cartesian pass adds the other 2.
    assert len(specs) == 6
    fingerprints = {tuple(sorted(spec.knobs)) for spec in specs}
    assert len(fingerprints) == 6
    keys = [spec.key for spec in specs]
    assert keys[0] == BASELINE_KEY
    assert "ticks=many,mode=jittered" in keys


def test_extras_expand_and_dedupe():
    grid = GridDef(
        name="g",
        knobs=(Knob("k", baseline="a", variants=("b",)),),
        runner="m:f",
        extras=(
            ("same_as_one_off", (("k", "b"),)),  # duplicate: dropped
            ("still_baseline", ()),  # duplicate of baseline: dropped
        ),
    )
    keys = [spec.key for spec in AblationStudy(grid).expand()]
    assert keys == [BASELINE_KEY, "k=b"]


def test_seeds_are_stable_and_distinct_per_spec():
    study = AblationStudy(TOY_GRID)
    specs = study.expand()
    seeds = [spec.seed for spec in specs]
    assert len(set(seeds)) == len(seeds)
    for spec in specs:
        assert spec.seed == derive_seed(TOY_GRID.seed, "toy", spec.key)
    # Re-expansion reproduces the same seeds (no per-process salt).
    assert [s.seed for s in study.expand()] == seeds


# ----------------------------------------------------------------------
# Execution: serial vs fanned, crash surfacing
# ----------------------------------------------------------------------
def test_jobs_1_and_jobs_2_produce_identical_artifacts():
    study = AblationStudy(TOY_GRID)
    specs = study.expand()
    serial = study.execute(specs, jobs=1)
    fanned = study.execute(specs, jobs=2)
    one = dump_payload(
        strip_wall_clock(study_payload(study, serial, jobs=1, wall_s=0.0))
    )
    two = dump_payload(
        strip_wall_clock(study_payload(study, fanned, jobs=2, wall_s=0.0))
    )
    assert one == two
    assert [r.spec.key for r in fanned] == [s.key for s in specs]


def test_worker_crash_surfaces_as_error_result():
    study = AblationStudy(TOY_GRID)
    specs = study.expand()
    for jobs in (1, 2):
        results = study.execute(specs, jobs=jobs)
        by_key = {r.spec.key: r for r in results}
        boom = by_key["mode=boom"]
        assert not boom.ok
        assert boom.status == "error"
        assert "injected toy-grid failure" in boom.error
        # The crash does not poison the siblings.
        assert by_key[BASELINE_KEY].ok
        assert by_key["ticks=many"].ok


def test_error_runs_carry_no_digest_and_are_skipped_by_importance():
    study = AblationStudy(TOY_GRID)
    results = study.execute(study.expand(), jobs=1)
    boom = next(r for r in results if r.spec.key == "mode=boom")
    assert boom.digest is None and boom.metrics == {}
    assert "mode=boom" not in study.importance(results)


# ----------------------------------------------------------------------
# Importance arithmetic
# ----------------------------------------------------------------------
def test_importance_deltas_and_ratios():
    grid = GridDef(
        name="g",
        knobs=(Knob("k", baseline="on", variants=("off",)),),
        runner="m:f",
    )
    study = AblationStudy(grid)
    base_spec, off_spec = study.expand()
    results = [
        _result(base_spec, {"p99_ms": 10.0, "availability": 1.0, "zero": 0.0}),
        _result(off_spec, {"p99_ms": 25.0, "availability": 0.9, "zero": 4.0}),
    ]
    scores = study.importance(results)
    assert set(scores) == {"k=off"}
    p99 = scores["k=off"]["p99_ms"]
    assert p99 == {
        "baseline": 10.0,
        "value": 25.0,
        "delta": 15.0,
        "ratio": 2.5,
    }
    assert scores["k=off"]["availability"]["delta"] == pytest.approx(-0.1)
    # A zero baseline reports no ratio rather than dividing by zero.
    assert "ratio" not in scores["k=off"]["zero"]


def test_importance_without_baseline_is_empty():
    grid = GridDef(
        name="g",
        knobs=(Knob("k", baseline="on", variants=("off",)),),
        runner="m:f",
    )
    study = AblationStudy(grid)
    base_spec, off_spec = study.expand()
    assert study.importance([_result(off_spec, {"p99_ms": 1.0})]) == {}
    failed_base = _result(base_spec, {}, status="error")
    assert study.importance([failed_base]) == {}


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def test_payload_shape_and_wall_clock_stripping():
    study = AblationStudy(TOY_GRID, smoke=True)
    specs = study.expand()
    results = study.execute(specs, jobs=1)
    payload = study_payload(study, results, jobs=3, wall_s=1.5, cpus=8)
    assert payload["schema_version"] == 2
    assert payload["grid"] == "toy"
    assert payload["smoke"] is True
    assert [row["key"] for row in payload["runs"]] == [s.key for s in specs]
    stripped = strip_wall_clock(payload)
    assert "wall_s" not in stripped
    assert "jobs" not in stripped and "cpus" not in stripped
    for row in stripped["runs"]:
        assert "wall_s" not in row
        assert "seed" in row and "digest" in row


def test_spec_knob_dict_round_trip():
    spec = RunSpec(
        grid="g",
        key="k=b",
        knobs=(("k", "b"), ("j", "a")),
        runner="m:f",
        seed=5,
        smoke=False,
    )
    assert spec.knob_dict() == {"k": "b", "j": "a"}
