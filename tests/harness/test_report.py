"""The consolidated reproduction report."""


from repro.harness.report import (
    equation_1,
    generate_report,
    headline_figures,
    main,
    table_3_1,
    table_3_2,
)


def test_table_3_1_within_tolerance():
    table = table_3_1()
    assert len(table.rows) == 15
    table.check(tolerance_pct=8.0)


def test_table_3_2_hit_rows_exact():
    table = table_3_2()
    for row in table.rows:
        if "hit" in row.label:
            assert abs(row.deviation_pct) < 0.5, row.label
        else:
            assert abs(row.deviation_pct) < 11.0, row.label


def test_headline_figures_tight():
    table = headline_figures()
    table.check(tolerance_pct=2.0)


def test_equation_1_text():
    text = equation_1()
    assert "11.5%" in text and "42.3%" in text


def test_generate_report_contains_all_sections():
    report = generate_report()
    for fragment in (
        "Table 3.1",
        "Table 3.2",
        "Headline component costs",
        "equation (1)",
    ):
        assert fragment in report


def test_main_writes_file(tmp_path, capsys):
    target = tmp_path / "results.md"
    assert main([str(target)]) == 0
    assert "wrote" in capsys.readouterr().out
    assert "Table 3.1" in target.read_text()


def test_main_prints_to_stdout(capsys):
    assert main([]) == 0
    assert "Table 3.1" in capsys.readouterr().out


def test_ablation_tables_renders_artifacts(tmp_path):
    import json

    from repro.harness.report import ablation_tables

    artifact = {
        "schema_version": 2,
        "bench": "ablation_toy",
        "grid": "toy",
        "smoke": True,
        "runs": [
            {
                "key": "baseline",
                "status": "ok",
                "digest": "abc123def456",
                "metrics": {"p50_ms": 10.0, "p99_ms": 20.0},
            },
            {
                "key": "mode=boom",
                "status": "error",
                "digest": None,
                "metrics": {},
            },
        ],
        "importance": {
            "k=off": {
                "p99_ms": {
                    "baseline": 20.0,
                    "value": 50.0,
                    "delta": 30.0,
                    "ratio": 2.5,
                }
            }
        },
    }
    (tmp_path / "BENCH_ablation_toy.json").write_text(json.dumps(artifact))
    text = ablation_tables(str(tmp_path))
    assert "Ablation grid: toy (smoke)" in text
    assert "baseline" in text and "abc123def456"[:12] in text
    assert "ERROR" in text  # the failed run is visible, not hidden
    assert "knob importance" in text and "2.50x" in text


def test_ablation_tables_skips_other_schemas_and_notes_empty(tmp_path):
    import json

    from repro.harness.report import ablation_tables

    assert "no BENCH_ablation_" in ablation_tables(str(tmp_path))
    (tmp_path / "BENCH_ablation_x.json").write_text(
        json.dumps({"schema_version": 1})
    )
    assert "skipped" in ablation_tables(str(tmp_path))
