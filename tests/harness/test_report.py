"""The consolidated reproduction report."""


from repro.harness.report import (
    equation_1,
    generate_report,
    headline_figures,
    main,
    table_3_1,
    table_3_2,
)


def test_table_3_1_within_tolerance():
    table = table_3_1()
    assert len(table.rows) == 15
    table.check(tolerance_pct=8.0)


def test_table_3_2_hit_rows_exact():
    table = table_3_2()
    for row in table.rows:
        if "hit" in row.label:
            assert abs(row.deviation_pct) < 0.5, row.label
        else:
            assert abs(row.deviation_pct) < 11.0, row.label


def test_headline_figures_tight():
    table = headline_figures()
    table.check(tolerance_pct=2.0)


def test_equation_1_text():
    text = equation_1()
    assert "11.5%" in text and "42.3%" in text


def test_generate_report_contains_all_sections():
    report = generate_report()
    for fragment in (
        "Table 3.1",
        "Table 3.2",
        "Headline component costs",
        "equation (1)",
    ):
        assert fragment in report


def test_main_writes_file(tmp_path, capsys):
    target = tmp_path / "results.md"
    assert main([str(target)]) == 0
    assert "wrote" in capsys.readouterr().out
    assert "Table 3.1" in target.read_text()


def test_main_prints_to_stdout(capsys):
    assert main([]) == 0
    assert "Table 3.1" in capsys.readouterr().out
