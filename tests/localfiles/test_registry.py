"""Local binding file mechanics."""

import pytest

from repro.localfiles import BindingFileEntry, LocalBindingFile, Replicator
from repro.net import Internetwork
from repro.sim import Environment


@pytest.fixture
def world():
    env = Environment(seed=2)
    net = Internetwork(env)
    a = net.add_host("a")
    b = net.add_host("b")
    return env, net, a, b


def entry(service="svc", host="h1", port=100):
    return BindingFileEntry(service, host, "10.0.0.1", port)


def test_entry_line_format():
    e = entry()
    assert e.line().split("\t") == ["svc", "h1", "10.0.0.1", "100", "sunrpc"]
    assert e.size_bytes == len(e.line()) + 1


def test_install_and_withdraw(world):
    env, net, a, b = world
    f = LocalBindingFile(a)
    f.install(entry())
    assert len(f) == 1
    assert f.version == 1
    assert f.withdraw("svc", "h1")
    assert not f.withdraw("svc", "h1")
    assert len(f) == 0


def test_lookup_charges_disk_and_parse(world):
    env, net, a, b = world
    f = LocalBindingFile(a)
    f.install(entry())

    def scenario():
        e = yield from f.lookup("svc", "h1")
        return e, env.now

    e, when = env.run(until=env.process(scenario()))
    assert e.port == 100
    assert when > 30  # at least the disk access


def test_lookup_missing_raises_after_scan(world):
    env, net, a, b = world
    f = LocalBindingFile(a)

    def scenario():
        with pytest.raises(KeyError):
            yield from f.lookup("ghost", "h")
        return env.now

    when = env.run(until=env.process(scenario()))
    assert when > 30  # the scan happened anyway


def test_replicator_file_on(world):
    env, net, a, b = world
    fa, fb = LocalBindingFile(a), LocalBindingFile(b)
    rep = Replicator(net, None, [fa, fb])
    assert rep.file_on(a) is fa
    assert rep.file_on(b) is fb
    c = net.add_host("c")
    assert rep.file_on(c) is None


def test_publish_reaches_remote_replica(world):
    env, net, a, b = world
    fa, fb = LocalBindingFile(a), LocalBindingFile(b)
    rep = Replicator(net, None, [fa, fb])
    updated = env.run(until=env.process(rep.publish(a, entry())))
    assert updated == 2
    assert len(fa) == 1 and len(fb) == 1
    assert env.now > 0  # network + disk time was charged
