"""Clearinghouse substrate: names, database, auth, client/server."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.clearinghouse import (
    AuthenticationFailed,
    CHName,
    ClearinghouseClient,
    ClearinghouseServer,
    CredentialStore,
    Credentials,
    NoSuchObject,
    NoSuchProperty,
    PropertyDatabase,
)
from repro.harness.calibration import DEFAULT_CALIBRATION
from repro.net import Internetwork, StreamTransport
from repro.sim import ConstantLatency, Environment

CAL = DEFAULT_CALIBRATION


# ----------------------------------------------------------------------
# Names
# ----------------------------------------------------------------------
def test_name_parse_and_str():
    n = CHName.parse("Fiji:HCS:UW")
    assert str(n) == "fiji:hcs:uw"
    assert n.domain_key == ("hcs", "uw")


def test_name_validation():
    with pytest.raises(ValueError):
        CHName.parse("only:two")
    with pytest.raises(ValueError):
        CHName("", "d", "o")
    with pytest.raises(ValueError):
        CHName("a" * 41, "d", "o")
    with pytest.raises(ValueError):
        CHName("a:b", "d", "o")


def test_name_equality_case_insensitive():
    assert CHName.parse("A:B:C") == CHName.parse("a:b:c")


@given(
    st.text(alphabet=st.characters(whitelist_categories=("Ll",), max_codepoint=127), min_size=1, max_size=10),
    st.text(alphabet=st.characters(whitelist_categories=("Ll",), max_codepoint=127), min_size=1, max_size=10),
    st.text(alphabet=st.characters(whitelist_categories=("Ll",), max_codepoint=127), min_size=1, max_size=10),
)
@settings(max_examples=30, deadline=None)
def test_name_parse_roundtrip(o, d, org):
    n = CHName(o, d, org)
    assert CHName.parse(str(n)) == n


# ----------------------------------------------------------------------
# Database
# ----------------------------------------------------------------------
def test_database_crud():
    db = PropertyDatabase()
    name = CHName.parse("printer:hcs:uw")
    db.register(name, {"address": b"\x0a\x00\x00\x01", "queue": b"lp0"})
    assert db.retrieve(name, "address") == b"\x0a\x00\x00\x01"
    assert db.properties_of(name) == ["address", "queue"]
    db.delete_property(name, "queue")
    with pytest.raises(NoSuchProperty):
        db.retrieve(name, "queue")
    db.delete_object(name)
    with pytest.raises(NoSuchObject):
        db.retrieve(name, "address")
    with pytest.raises(NoSuchObject):
        db.delete_object(name)


def test_database_validation():
    db = PropertyDatabase()
    with pytest.raises(ValueError):
        db.register(CHName.parse("a:b:c"), {})
    with pytest.raises(TypeError):
        db.register(CHName.parse("a:b:c"), {"p": "not bytes"})


def test_database_domain_listing():
    db = PropertyDatabase()
    db.register(CHName.parse("a:hcs:uw"), {"p": b"1"})
    db.register(CHName.parse("b:hcs:uw"), {"p": b"1"})
    db.register(CHName.parse("c:other:uw"), {"p": b"1"})
    assert [str(n) for n in db.objects_in_domain("HCS", "UW")] == [
        "a:hcs:uw",
        "b:hcs:uw",
    ]


def test_deleting_last_property_removes_object():
    db = PropertyDatabase()
    name = CHName.parse("x:d:o")
    db.register(name, {"p": b"1"})
    db.delete_property(name, "p")
    assert not db.contains(name)


# ----------------------------------------------------------------------
# Credentials
# ----------------------------------------------------------------------
def test_credential_verification():
    store = CredentialStore()
    store.enroll("schwartz", "sosp87")
    assert store.verify(Credentials("schwartz", "sosp87"))
    assert not store.verify(Credentials("schwartz", "wrong"))
    assert not store.verify(Credentials("unknown", "sosp87"))
    assert not store.verify(None)
    assert store.revoke("schwartz")
    assert not store.verify(Credentials("schwartz", "sosp87"))
    with pytest.raises(ValueError):
        store.enroll("", "x")


# ----------------------------------------------------------------------
# Client/server end-to-end
# ----------------------------------------------------------------------
@pytest.fixture
def ch_deployment():
    env = Environment(seed=5)
    net = Internetwork(env)
    segment = net.add_segment(
        latency=ConstantLatency(CAL.wire_base_ms, CAL.wire_per_byte_ms)
    )
    client_host = net.add_host("dlion", segment, system_type="xde")
    server_host = net.add_host("chserver", segment, system_type="xde")
    server = ClearinghouseServer(server_host)
    server.credentials.enroll("hcs", "secret")
    server.database.register(
        CHName.parse("fiji:hcs:uw"), {"address": bytes([128, 95, 1, 4])}
    )
    ep = server.listen()
    # Courier runs over a stream protocol (SPP); use the TCP-like one.
    transport = StreamTransport(net)
    client = ClearinghouseClient(
        client_host, transport, ep, Credentials("hcs", "secret")
    )
    return env, net, client, server


def run(env, gen):
    return env.run(until=env.process(gen))


def test_retrieve_roundtrip(ch_deployment):
    env, net, client, server = ch_deployment
    address = run(env, client.lookup_address("fiji:hcs:uw"))
    assert address == "128.95.1.4"


def test_lookup_costs_156ms(ch_deployment):
    """'a Clearinghouse name to address lookup takes 156 msec.'"""
    env, net, client, server = ch_deployment
    start = env.now
    run(env, client.lookup_address("fiji:hcs:uw"))
    assert env.now - start == pytest.approx(156.0, rel=0.02)


def test_clearinghouse_much_slower_than_bind(ch_deployment):
    """The 27 vs 156 ms gap drives the paper's caching argument."""
    env, net, client, server = ch_deployment
    start = env.now
    run(env, client.lookup_address("fiji:hcs:uw"))
    assert (env.now - start) / 27.0 > 5.0


def test_bad_credentials_rejected_after_auth_cost(ch_deployment):
    env, net, client, server = ch_deployment
    client.credentials = Credentials("hcs", "wrong")
    start = env.now

    def scenario():
        with pytest.raises(AuthenticationFailed):
            yield from client.retrieve("fiji:hcs:uw", "address")
        return env.now - start

    elapsed = run(env, scenario())
    # Authentication cost is paid even on failure.
    assert elapsed >= CAL.ch_auth_cpu_ms + CAL.ch_auth_disk_ms


def test_missing_object_and_property(ch_deployment):
    env, net, client, server = ch_deployment

    def scenario():
        with pytest.raises(NoSuchObject):
            yield from client.retrieve("ghost:hcs:uw", "address")
        with pytest.raises(NoSuchProperty):
            yield from client.retrieve("fiji:hcs:uw", "nope")
        return "done"

    assert run(env, scenario()) == "done"


def test_register_then_retrieve(ch_deployment):
    env, net, client, server = ch_deployment
    run(env, client.register("printer:hcs:uw", "address", bytes([10, 0, 0, 7])))
    assert run(env, client.lookup_address("printer:hcs:uw")) == "10.0.0.7"
    run(env, client.delete("printer:hcs:uw", "address"))

    def scenario():
        with pytest.raises(NoSuchObject):
            yield from client.retrieve("printer:hcs:uw", "address")
        return "done"

    assert run(env, scenario()) == "done"


def test_every_access_authenticates(ch_deployment):
    """Auth disk traffic scales with access count, even repeated ones."""
    env, net, client, server = ch_deployment
    for _ in range(3):
        run(env, client.lookup_address("fiji:hcs:uw"))
    assert env.stats.counters()["ch.clearinghouse@chserver.retrieves"] == 3
