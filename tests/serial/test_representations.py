"""XDR and Courier wire formats: round-trips, alignment, errors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.serial import (
    ArrayType,
    BoolType,
    CourierRepresentation,
    OpaqueType,
    OptionalType,
    StringType,
    StructType,
    U32Type,
    XdrRepresentation,
)
from repro.serial.wire import WireError, WireReader, WireWriter

REPS = [XdrRepresentation(), CourierRepresentation()]

NESTED = StructType(
    "Nested",
    [
        ("id", U32Type()),
        ("flag", BoolType()),
        ("label", StringType(64)),
        ("blob", OpaqueType(32)),
        ("tags", ArrayType(StringType(16), 8)),
        ("maybe", OptionalType(U32Type())),
    ],
)

SAMPLE = {
    "id": 7,
    "flag": True,
    "label": "clearinghouse",
    "blob": b"\x01\x02\x03",
    "tags": ["a", "bb", "ccc"],
    "maybe": None,
}


@pytest.mark.parametrize("rep", REPS, ids=lambda r: r.name)
def test_nested_roundtrip(rep):
    data = rep.encode(NESTED, SAMPLE)
    assert rep.decode(NESTED, data) == SAMPLE


def test_xdr_pads_to_four():
    rep = XdrRepresentation()
    data = rep.encode(StringType(), "abc")
    assert len(data) == 8  # 4 length + 3 chars + 1 pad
    assert data[-1] == 0


def test_courier_pads_to_two():
    rep = CourierRepresentation()
    data = rep.encode(StringType(), "abc")
    assert len(data) == 6  # 2 length + 3 chars + 1 pad


def test_representations_differ_on_wire():
    xdr, courier = REPS
    assert xdr.encode(NESTED, SAMPLE) != courier.encode(NESTED, SAMPLE)


@pytest.mark.parametrize("rep", REPS, ids=lambda r: r.name)
def test_decode_rejects_trailing_garbage(rep):
    data = rep.encode(U32Type(), 5) + b"\x00"
    with pytest.raises(WireError):
        rep.decode(U32Type(), data)


@pytest.mark.parametrize("rep", REPS, ids=lambda r: r.name)
def test_decode_rejects_truncation(rep):
    data = rep.encode(NESTED, SAMPLE)
    with pytest.raises(WireError):
        rep.decode(NESTED, data[:-4])


def test_decode_rejects_oversized_array_length():
    rep = XdrRepresentation()
    t = ArrayType(U32Type(), max_length=2)
    # Hand-craft a length prefix of 3.
    w = WireWriter()
    w.u32(3)
    for v in (1, 2, 3):
        w.u32(v)
    from repro.serial.idl import IdlError

    with pytest.raises(IdlError):
        rep.decode(t, w.getvalue())


def test_wire_writer_range_checks():
    w = WireWriter()
    with pytest.raises(WireError):
        w.u8(256)
    with pytest.raises(WireError):
        w.u16(-1)
    with pytest.raises(WireError):
        w.u32(2**32)


def test_wire_reader_truncation():
    r = WireReader(b"\x00\x01")
    assert r.u16() == 1
    with pytest.raises(WireError):
        r.u8()


# ----------------------------------------------------------------------
# Property tests: encode/decode are inverses for arbitrary values.
# ----------------------------------------------------------------------
values = st.fixed_dictionaries(
    {
        "id": st.integers(min_value=0, max_value=2**32 - 1),
        "flag": st.booleans(),
        "label": st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=64
        ),
        "blob": st.binary(max_size=32),
        "tags": st.lists(
            st.text(
                alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                max_size=16,
            ),
            max_size=8,
        ),
        "maybe": st.none() | st.integers(min_value=0, max_value=2**32 - 1),
    }
)


@given(values)
@settings(max_examples=60, deadline=None)
def test_xdr_roundtrip_property(value):
    rep = XdrRepresentation()
    assert rep.decode(NESTED, rep.encode(NESTED, value)) == value


@given(values)
@settings(max_examples=60, deadline=None)
def test_courier_roundtrip_property(value):
    rep = CourierRepresentation()
    assert rep.decode(NESTED, rep.encode(NESTED, value)) == value


@given(values)
@settings(max_examples=40, deadline=None)
def test_xdr_encoding_is_deterministic(value):
    rep = XdrRepresentation()
    assert rep.encode(NESTED, value) == rep.encode(NESTED, value)
