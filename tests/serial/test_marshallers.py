"""Generated vs hand-coded marshallers: identical bytes, different costs.

The calibration targets come straight from Table 3.2 of the paper:
hand-coded 0.65/2.6 ms and generated-demarshal 10.28/24.95 ms for BIND
responses with 1/6 resource records.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.serial import (
    ArrayType,
    CourierRepresentation,
    HandcodedMarshaller,
    OpaqueType,
    StringType,
    StructType,
    StubCompiler,
    U32Type,
)
from repro.serial.generated import OpCosts

RR = StructType(
    "ResourceRecord",
    [
        ("name", StringType(255)),
        ("rtype", U32Type()),
        ("rclass", U32Type()),
        ("ttl", U32Type()),
        ("data", OpaqueType(256)),
    ],
)
RESPONSE = StructType(
    "LookupResponse",
    [("status", U32Type()), ("records", ArrayType(RR, 64))],
)


def response(n, name="fiji.cs.washington.edu", data=bytes([128, 95, 1, 4])):
    return {
        "status": 0,
        "records": [
            {"name": name, "rtype": 1, "rclass": 1, "ttl": 3600, "data": data}
            for _ in range(n)
        ],
    }


@pytest.fixture
def generated():
    return StubCompiler().marshaller(RESPONSE)


@pytest.fixture
def handcoded():
    return HandcodedMarshaller(RESPONSE)


def test_same_wire_bytes(generated, handcoded):
    value = response(3)
    gen_bytes, _ = generated.encode(value)
    hc_bytes, _ = handcoded.encode(value)
    assert gen_bytes == hc_bytes


def test_roundtrip_through_either(generated, handcoded):
    value = response(2)
    data, _ = generated.encode(value)
    assert generated.decode(data)[0] == value
    assert handcoded.decode(data)[0] == value


def test_generated_decode_costs_match_table_3_2(generated):
    for n, target in ((1, 10.28), (6, 24.95)):
        data, _ = generated.encode(response(n))
        _, cost = generated.decode(data)
        assert cost == pytest.approx(target, rel=0.001)


def test_handcoded_costs_match_table_3_2(handcoded):
    for n, target in ((1, 0.65), (6, 2.60)):
        data, _ = handcoded.encode(response(n))
        _, cost = handcoded.decode(data)
        assert cost == pytest.approx(target, rel=0.001)


def test_generated_is_much_slower_than_handcoded(generated, handcoded):
    """The paper's headline: ~16x for one record, ~10x for six."""
    for n, low, high in ((1, 12, 20), (6, 8, 12)):
        data, _ = generated.encode(response(n))
        _, gen_cost = generated.decode(data)
        _, hc_cost = handcoded.decode(data)
        assert low < gen_cost / hc_cost < high


def test_cost_grows_with_record_count(generated):
    costs = []
    for n in (1, 2, 4, 8):
        data, _ = generated.encode(response(n))
        costs.append(generated.decode(data)[1])
    assert costs == sorted(costs)
    # Linear growth: equal increments per added record.
    assert (costs[1] - costs[0]) == pytest.approx((costs[3] - costs[2]) / 4, rel=0.01)


def test_op_counts_scale_linearly(generated):
    c1 = generated.measure_decode(generated.encode(response(1))[0])
    c6 = generated.measure_decode(generated.encode(response(6))[0])
    assert c6.proc_calls - c1.proc_calls == 5 * 6
    assert c6.indirect_calls - c1.indirect_calls == 5 * 6
    assert c6.allocations - c1.allocations == 5 * 3


def test_custom_op_costs_ablation(generated):
    """Making generated ops free collapses the gap (the paper's fix-path)."""
    cheap = OpCosts(
        entry_overhead_ms=0.2,
        per_proc_call_ms=0.001,
        per_indirect_call_ms=0.001,
        per_allocation_ms=0.002,
    )
    m = StubCompiler().marshaller(RESPONSE, op_costs=cheap)
    data, _ = m.encode(response(6))
    _, cost = m.decode(data)
    assert cost < 1.0


def test_compiler_caches_plans():
    comp = StubCompiler()
    assert comp.compile(RESPONSE) is comp.compile(RESPONSE)


def test_courier_backend_roundtrip():
    comp = StubCompiler(CourierRepresentation())
    m = comp.marshaller(RESPONSE)
    value = response(2)
    data, _ = m.encode(value)
    assert m.decode(data)[0] == value
    # Different representation, different bytes.
    xdr_bytes, _ = StubCompiler().marshaller(RESPONSE).encode(value)
    assert data != xdr_bytes


def test_handcoded_validation():
    with pytest.raises(ValueError):
        HandcodedMarshaller(RESPONSE, base_ms=-1)


@given(
    st.integers(min_value=0, max_value=10),
    st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126),
        min_size=1,
        max_size=40,
    ),
    st.binary(min_size=0, max_size=64),
)
@settings(max_examples=40, deadline=None)
def test_marshaller_roundtrip_property(n, name, blob):
    value = response(n, name=name, data=blob)
    gen = StubCompiler().marshaller(RESPONSE)
    hc = HandcodedMarshaller(RESPONSE)
    gen_bytes, _ = gen.encode(value)
    hc_bytes, _ = hc.encode(value)
    assert gen_bytes == hc_bytes
    assert gen.decode(gen_bytes)[0] == value
    assert hc.decode(hc_bytes)[0] == value
