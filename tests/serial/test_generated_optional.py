"""Generated-plan coverage for optional and deeply nested types."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.serial import (
    ArrayType,
    BoolType,
    CourierRepresentation,
    HandcodedMarshaller,
    OptionalType,
    StringType,
    StructType,
    StubCompiler,
    U32Type,
)

DEEP = StructType(
    "Deep",
    [
        ("maybe_label", OptionalType(StringType(32))),
        ("maybe_inner", OptionalType(
            StructType(
                "Inner",
                [("flag", BoolType()), ("xs", ArrayType(U32Type(), 8))],
            )
        )),
        ("matrix", ArrayType(ArrayType(U32Type(), 4), 4)),
    ],
)


def sample(label, inner, matrix):
    return {"maybe_label": label, "maybe_inner": inner, "matrix": matrix}


CASES = [
    sample(None, None, []),
    sample("x", None, [[1, 2], []]),
    sample(None, {"flag": True, "xs": [7]}, [[0]]),
    sample("full", {"flag": False, "xs": [1, 2, 3]}, [[1], [2], [3]]),
]


@pytest.mark.parametrize("value", CASES)
def test_generated_optional_roundtrip(value):
    m = StubCompiler().marshaller(DEEP)
    data, encode_cost = m.encode(value)
    decoded, decode_cost = m.decode(data)
    assert decoded == value
    assert encode_cost > 0 and decode_cost > 0


@pytest.mark.parametrize("value", CASES)
def test_generated_matches_handcoded_bytes(value):
    gen = StubCompiler().marshaller(DEEP)
    hand = HandcodedMarshaller(DEEP)
    assert gen.encode(value)[0] == hand.encode(value)[0]


def test_present_optional_costs_more_than_absent():
    m = StubCompiler().marshaller(DEEP)
    _, absent = m.encode(CASES[0])
    _, present = m.encode(CASES[3])
    assert present > absent


def test_generated_optional_over_courier():
    m = StubCompiler(CourierRepresentation()).marshaller(DEEP)
    for value in CASES:
        data, _ = m.encode(value)
        assert m.decode(data)[0] == value


opt_values = st.fixed_dictionaries(
    {
        "maybe_label": st.none()
        | st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=32
        ),
        "maybe_inner": st.none()
        | st.fixed_dictionaries(
            {
                "flag": st.booleans(),
                "xs": st.lists(
                    st.integers(min_value=0, max_value=2**32 - 1), max_size=8
                ),
            }
        ),
        "matrix": st.lists(
            st.lists(st.integers(min_value=0, max_value=2**32 - 1), max_size=4),
            max_size=4,
        ),
    }
)


@given(opt_values)
@settings(max_examples=50, deadline=None)
def test_generated_optional_roundtrip_property(value):
    m = StubCompiler().marshaller(DEEP)
    data, _ = m.encode(value)
    assert m.decode(data)[0] == value
