"""IDL type validation."""

import pytest

from repro.serial import (
    ArrayType,
    BoolType,
    IdlError,
    OpaqueType,
    OptionalType,
    StringType,
    StructType,
    U32Type,
)


def test_u32_accepts_range():
    t = U32Type()
    t.validate(0)
    t.validate(2**32 - 1)
    for bad in (-1, 2**32, 1.5, "x", True):
        with pytest.raises(IdlError):
            t.validate(bad)


def test_bool_strict():
    t = BoolType()
    t.validate(True)
    with pytest.raises(IdlError):
        t.validate(1)


def test_string_limits():
    t = StringType(5)
    t.validate("abcde")
    with pytest.raises(IdlError):
        t.validate("abcdef")
    with pytest.raises(IdlError):
        t.validate(b"bytes")
    with pytest.raises(ValueError):
        StringType(-1)


def test_opaque_limits():
    t = OpaqueType(4)
    t.validate(b"abcd")
    with pytest.raises(IdlError):
        t.validate(b"abcde")
    with pytest.raises(IdlError):
        t.validate("str")


def test_array_validates_elements():
    t = ArrayType(U32Type(), max_length=3)
    t.validate([1, 2, 3])
    with pytest.raises(IdlError):
        t.validate([1, 2, 3, 4])
    with pytest.raises(IdlError, match=r"array\[1\]"):
        t.validate([1, "x"])
    with pytest.raises(TypeError):
        ArrayType("not a type")  # type: ignore[arg-type]


def test_struct_field_checks():
    t = StructType("Pair", [("a", U32Type()), ("b", StringType())])
    t.validate({"a": 1, "b": "x"})
    with pytest.raises(IdlError, match="missing"):
        t.validate({"a": 1})
    with pytest.raises(IdlError, match="extra"):
        t.validate({"a": 1, "b": "x", "c": 2})
    with pytest.raises(IdlError, match=r"Pair\.a"):
        t.validate({"a": "wrong", "b": "x"})
    with pytest.raises(ValueError):
        StructType("Dup", [("a", U32Type()), ("a", U32Type())])
    with pytest.raises(ValueError):
        StructType("Empty", [])


def test_optional_accepts_none():
    t = OptionalType(U32Type())
    t.validate(None)
    t.validate(7)
    with pytest.raises(IdlError):
        t.validate("x")


def test_describe_strings():
    t = StructType("S", [("xs", ArrayType(OptionalType(StringType(10))))])
    d = t.describe()
    assert "struct S" in d and "array<optional<string<10>>>" in d
