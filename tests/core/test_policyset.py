"""The unified PolicySet bundle and its deprecated per-policy aliases."""

import warnings

import pytest

from repro.core.hns import HNS
from repro.resolution import (
    DEFAULT_RESOLUTION_POLICY,
    FastPathPolicy,
    PolicySet,
    ReplicaPolicy,
    ResolutionPolicy,
    UpdatePolicy,
    reset_policy_deprecation_warnings,
)


# ----------------------------------------------------------------------
# The bundle itself
# ----------------------------------------------------------------------
def test_default_matches_the_historical_kwarg_defaults():
    policies = PolicySet.default()
    assert policies.resolution == DEFAULT_RESOLUTION_POLICY
    assert policies.fast_path is None
    assert policies.replica is None
    assert policies.update is None


def test_paper_prototype_disables_every_mechanism():
    policies = PolicySet.paper_prototype()
    assert policies.resolution == ResolutionPolicy.disabled()
    assert policies.fast_path == FastPathPolicy.disabled()
    assert policies.replica == ReplicaPolicy.disabled()
    assert policies.update == UpdatePolicy.disabled()
    assert not policies.update.active


def test_update_policy_validation():
    with pytest.raises(ValueError):
        UpdatePolicy(invalidation="carrier-pigeon")
    with pytest.raises(ValueError):
        UpdatePolicy(max_batch_ops=0)
    with pytest.raises(ValueError):
        UpdatePolicy(lease_ms=0.0)
    with pytest.raises(ValueError):
        UpdatePolicy(lease_renew_fraction=1.0)
    disabled = UpdatePolicy.disabled()
    assert not disabled.active
    assert UpdatePolicy(invalidation="lease").leases
    assert UpdatePolicy(invalidation="notify").notify


# ----------------------------------------------------------------------
# Threading one PolicySet through the stack
# ----------------------------------------------------------------------
def test_policyset_round_trips_through_metastore_and_hns(testbed):
    policies = PolicySet(
        resolution=ResolutionPolicy(attempts=2),
        fast_path=FastPathPolicy(),
        replica=ReplicaPolicy(),
        update=UpdatePolicy(invalidation="lease"),
    )
    store = testbed.make_metastore(testbed.client, policies=policies)
    assert store.policies == policies
    assert store.policy == policies.resolution
    assert store.fast_path == policies.fast_path
    assert store.replica_policy == policies.replica
    assert store.update_policy == policies.update
    assert store.resolver.policies == policies

    hns = HNS(store, calibration=testbed.calibration)
    assert hns.policies == policies  # inherited from the metastore
    assert hns.policy == policies.resolution
    assert hns.fast_path == policies.fast_path
    assert hns.replica_policy == policies.replica


def test_hns_policyset_overrides_the_metastore_bundle(testbed):
    store = testbed.make_metastore(testbed.client)
    override = PolicySet.paper_prototype()
    hns = HNS(store, calibration=testbed.calibration, policies=override)
    assert hns.policies == override
    assert store.policies != override  # the metastore keeps its own


def test_none_uniformly_means_disabled_everywhere(testbed):
    store = testbed.make_metastore(testbed.client, policies=PolicySet())
    assert store.policy is None
    assert store.fast_path is None
    assert store.replica_policy is None
    assert store.update_policy is None
    hns = HNS(store, calibration=testbed.calibration)
    # The old per-field fallback rules gave ``policy`` a default of its
    # own while the others inherited; now all four resolve in one place.
    assert hns.policy is None
    assert hns.fast_path is None
    assert hns.replica_policy is None


# ----------------------------------------------------------------------
# Deprecated aliases
# ----------------------------------------------------------------------
def test_legacy_kwargs_still_work_and_warn_once(testbed):
    reset_policy_deprecation_warnings()
    policy = ResolutionPolicy(attempts=2)
    with pytest.warns(DeprecationWarning, match="MetaStore.*'policy'"):
        store = testbed.make_metastore(testbed.client).__class__(
            testbed.client,
            testbed.udp,
            testbed.meta_endpoint,
            calibration=testbed.calibration,
            policy=policy,
        )
    assert store.policy == policy
    assert store.policies.resolution == policy

    # The same (caller, kwarg) pair warns only once per process.
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        store.__class__(
            testbed.client,
            testbed.udp,
            testbed.meta_endpoint,
            calibration=testbed.calibration,
            policy=policy,
        )
    assert not [w for w in caught if issubclass(w.category, DeprecationWarning)]


def test_legacy_kwarg_overrides_the_policyset_slot(testbed):
    reset_policy_deprecation_warnings()
    with pytest.warns(DeprecationWarning, match="HNS.*'fast_path'"):
        hns = HNS(
            testbed.make_metastore(testbed.client),
            calibration=testbed.calibration,
            policies=PolicySet.default(),
            fast_path=FastPathPolicy(),
        )
    assert hns.fast_path == FastPathPolicy()
    assert hns.policy == DEFAULT_RESOLUTION_POLICY
