"""Shared fixture: the full simulated HCS testbed."""

import pytest

from repro.workloads import build_testbed


@pytest.fixture
def testbed():
    return build_testbed(seed=7)


def run(env, gen):
    return env.run(until=env.process(gen))
