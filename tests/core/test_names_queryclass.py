"""HNS names and query classes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import HNSName, QUERY_CLASSES, QueryClassUnsupported, query_class_named


def test_name_construction_and_display():
    n = HNSName("BIND-cs", "fiji.cs.washington.edu")
    assert str(n) == "BIND-cs::fiji.cs.washington.edu"
    assert HNSName.parse(str(n)) == n


def test_individual_name_any_syntax():
    """The individual name carries the local service's own syntax."""
    HNSName("CH-hcs", "printer:hcs:uw")
    HNSName("BIND-cs", "host.dom.edu")
    HNSName("files", "/usr/local/bin")
    HNSName("mail", "user@host!route%weird")


def test_name_validation():
    with pytest.raises(ValueError):
        HNSName("", "x")
    with pytest.raises(ValueError):
        HNSName("has space", "x")
    with pytest.raises(ValueError):
        HNSName("ctx", "")
    with pytest.raises(ValueError):
        HNSName("ctx", "a::b")  # separator reserved
    with pytest.raises(ValueError):
        HNSName.parse("no-separator")


def test_names_hashable_for_caching():
    a = HNSName("c", "n")
    b = HNSName("c", "n")
    assert a == b and hash(a) == hash(b)
    assert a.wire_size() > 0


@given(
    st.from_regex(r"[A-Za-z0-9][A-Za-z0-9_-]{0,20}", fullmatch=True),
    st.text(min_size=1, max_size=50).filter(lambda s: "::" not in s),
)
@settings(max_examples=50, deadline=None)
def test_name_parse_roundtrip(context, individual):
    n = HNSName(context, individual)
    assert HNSName.parse(str(n)) == n


def test_query_classes_have_distinct_interfaces():
    assert {"HRPCBinding", "HostAddress", "MailboxLocation", "FileService"} <= set(
        QUERY_CLASSES
    )
    binding = query_class_named("HRPCBinding")
    binding.validate_result(
        {"endpoint": None, "program": "x", "suite": "sunrpc", "system_type": "sun"}
    )
    with pytest.raises(QueryClassUnsupported):
        binding.validate_result({"endpoint": None})
    with pytest.raises(QueryClassUnsupported):
        query_class_named("Telepathy")
