"""Administration (evolvability) and the equation (1) model."""

import pytest

from repro.core import ColocationModel, HNSName, HnsAdministrator
from repro.core.model import preload_breakeven_calls
from repro.workloads.scenarios import BIND_NS

from tests.core.conftest import run


# ----------------------------------------------------------------------
# Equation (1)
# ----------------------------------------------------------------------
def test_q_threshold_matches_paper_hns_case():
    """'estimating C(remote call) as 33, C(cache hit) as 261, and
    C(cache miss) as 547, ... must exceed ... by an additional 11%'."""
    model = ColocationModel(remote_call_ms=33, cache_miss_ms=547, cache_hit_ms=261)
    assert model.q_threshold() == pytest.approx(0.115, abs=0.005)


def test_q_threshold_matches_paper_nsm_case():
    """'estimating C(cache hit) as 147 and C(cache miss) as 225, an
    additional 42% cache hit' (with the remote call at 33)."""
    model = ColocationModel(remote_call_ms=33, cache_miss_ms=225, cache_hit_ms=147)
    assert model.q_threshold() == pytest.approx(0.42, abs=0.01)


def test_costs_cross_exactly_at_threshold():
    model = ColocationModel(remote_call_ms=40, cache_miss_ms=500, cache_hit_ms=100)
    q = model.q_threshold()
    p = 0.3
    assert model.remote_cost(p, q) == pytest.approx(model.local_cost(p))
    assert model.remote_preferable(p, q + 0.01)
    assert not model.remote_preferable(p, q - 0.01)


def test_model_validation():
    with pytest.raises(ValueError):
        ColocationModel(33, cache_miss_ms=100, cache_hit_ms=100)
    model = ColocationModel(33, 500, 100)
    with pytest.raises(ValueError):
        model.local_cost(1.5)
    with pytest.raises(ValueError):
        model.remote_cost(0.9, 0.2)  # p+q > 1


def test_preload_breakeven_is_about_two_calls():
    """'preloading seems to be effective in situations where two or more
    calls to the HNS for different context/query classes will be made.'"""
    calls = preload_breakeven_calls(preload_ms=390, miss_ms=287.7, hit_ms=7.0)
    assert 1.0 < calls < 2.0
    with pytest.raises(ValueError):
        preload_breakeven_calls(390, 10, 10)


# ----------------------------------------------------------------------
# Administration: evolving the system
# ----------------------------------------------------------------------
def test_adding_a_new_system_type(testbed):
    """The headline scenario: a new system type joins; existing clients
    gain access with zero modification."""
    env = testbed.env
    # A new BIND-like service appears on a new host.
    from repro.bind import BindServer, ResourceRecord, Zone

    newhost = testbed.internet.add_host("newsys")
    zone = Zone("newdept.edu")
    zone.add(ResourceRecord.a_record("box.newdept.edu", "128.95.1.200"))
    new_ns = BindServer(newhost, zones=[zone], name="new-bind")
    new_endpoint = new_ns.listen()

    admin = HnsAdministrator(testbed.make_metastore(testbed.meta_host))

    def integrate():
        yield from admin.register_name_service(
            "BIND-newdept", "bind", "newsys.cs.washington.edu", 53
        )
        yield from admin.register_context("NEWDEPT", "BIND-newdept")
        yield from admin.register_nsm(
            nsm_name="HostAddress-BIND-newdept",
            query_class="HostAddress",
            name_service="BIND-newdept",
            host_name="nsmhost.cs.washington.edu",
            host_context="BIND-srv",
            program="nsm.HostAddress-BIND-newdept",
            suite="sunrpc",
            port=9200,
        )

    run(env, integrate())

    # An unmodified HNS client can now find the new system's NSM.
    hns = testbed.make_hns(testbed.client)
    binding = run(
        env, hns.find_nsm(HNSName("NEWDEPT", "box.newdept.edu"), "HostAddress")
    )
    assert binding.program == "nsm.HostAddress-BIND-newdept"


def test_native_updates_visible_globally(testbed):
    """Direct access: a change made through the *native* interface is
    seen by HNS clients without any reregistration."""
    env = testbed.env
    from repro.bind import ResourceRecord

    nsm = testbed.make_bind_hostaddr_nsm(testbed.client)
    name = HNSName("BIND-cs", "newborn.cs.washington.edu")

    def before():
        from repro.bind import NameNotFound

        with pytest.raises(NameNotFound):
            yield from nsm.query(name)
        return "absent"

    assert run(env, before()) == "absent"
    # A native application adds the host directly in the local BIND.
    testbed.public_server.zones[0].add(
        ResourceRecord.a_record("newborn.cs.washington.edu", "128.95.1.201")
    )
    result = run(env, nsm.query(name))
    assert result.value["address"] == "128.95.1.201"


def test_admin_validation(testbed):
    admin = HnsAdministrator(testbed.make_metastore(testbed.meta_host))

    def scenario():
        with pytest.raises(ValueError):
            yield from admin.register_name_service("X", "oracle", "h", 1)
        return "done"

    assert run(testbed.env, scenario()) == "done"


def test_unregister_nsm(testbed):
    env = testbed.env
    admin = HnsAdministrator(testbed.make_metastore(testbed.meta_host))
    run(env, admin.unregister_nsm(f"MailboxLocation-{BIND_NS}", "MailboxLocation", BIND_NS))
    hns = testbed.make_hns(testbed.client)

    def scenario():
        from repro.core import NsmNotFound

        with pytest.raises(NsmNotFound):
            yield from hns.find_nsm(
                HNSName("BIND-cs", "schwartz.cs.washington.edu"), "MailboxLocation"
            )
        return "done"

    assert run(env, scenario()) == "done"
