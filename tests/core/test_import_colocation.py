"""Import + colocation: Table 3.1's machinery end-to-end."""

import pytest

from repro.core import Arrangement, HNSName, HnsError, HrpcImporter
from repro.hrpc import HRPCBinding, HrpcRuntime
from repro.workloads import build_stack, build_testbed

FIJI = HNSName("BIND-cs", "fiji.cs.washington.edu")
DLION = HNSName("CH-hcs", "dlion:hcs:uw")

PAPER_TABLE_3_1 = {
    Arrangement.ALL_LOCAL: (460.0, 180.0, 104.0),
    Arrangement.AGENT: (517.0, 235.0, 137.0),
    Arrangement.REMOTE_HNS: (515.0, 232.0, 140.0),
    Arrangement.REMOTE_NSMS: (509.0, 225.0, 147.0),
    Arrangement.ALL_REMOTE: (547.0, 261.0, 181.0),
}


def run(env, gen):
    return env.run(until=env.process(gen))


def measure_cells(stack, env, name=FIJI, service="DesiredService"):
    def timed():
        start = env.now
        binding = yield from stack.importer.import_binding(service, name)
        return env.now - start, binding

    stack.flush_all_caches()
    a, binding = run(env, timed())
    stack.flush_nsm_caches()
    b, _ = run(env, timed())
    c, _ = run(env, timed())
    return (a, b, c), binding


@pytest.mark.parametrize("arrangement", list(Arrangement))
def test_import_works_in_every_arrangement(arrangement):
    testbed = build_testbed(seed=3)
    stack = build_stack(testbed, arrangement)
    binding = run(
        testbed.env, stack.importer.import_binding("DesiredService", FIJI)
    )
    assert isinstance(binding, HRPCBinding)
    assert binding.endpoint.address == testbed.fiji.address
    assert binding.endpoint.port == 9999
    assert binding.suite == "sunrpc"


@pytest.mark.parametrize("arrangement", list(Arrangement))
def test_table_3_1_cells_within_8_percent(arrangement):
    """Every measured cell lands within 8% of the paper's Table 3.1."""
    testbed = build_testbed(seed=3)
    stack = build_stack(testbed, arrangement)
    (a, b, c), _ = measure_cells(stack, testbed.env)
    pa, pb, pc = PAPER_TABLE_3_1[arrangement]
    for measured, paper in ((a, pa), (b, pb), (c, pc)):
        assert measured == pytest.approx(paper, rel=0.08)


def test_table_3_1_row_1_exact():
    """Row 1 (everything colocated) is the calibration anchor: exact."""
    testbed = build_testbed(seed=3)
    stack = build_stack(testbed, Arrangement.ALL_LOCAL)
    (a, b, c), _ = measure_cells(stack, testbed.env)
    assert a == pytest.approx(460.0, rel=0.005)
    assert b == pytest.approx(180.0, rel=0.005)
    assert c == pytest.approx(104.0, rel=0.005)


def test_column_ordering_always_holds():
    """Miss > HNS-hit > both-hit, in every arrangement (the table's shape)."""
    for arrangement in Arrangement:
        testbed = build_testbed(seed=3)
        stack = build_stack(testbed, arrangement)
        (a, b, c), _ = measure_cells(stack, testbed.env)
        assert a > b > c, arrangement


def test_colocation_saves_less_than_caching():
    """'the potential benefit of caching far exceeds that obtainable
    solely by colocation' — compare row5->row1 (colocation) with
    colA->colC (caching)."""
    cells = {}
    for arrangement in (Arrangement.ALL_LOCAL, Arrangement.ALL_REMOTE):
        testbed = build_testbed(seed=3)
        stack = build_stack(testbed, arrangement)
        cells[arrangement], _ = measure_cells(stack, testbed.env)
    colocation_gain = cells[Arrangement.ALL_REMOTE][0] - cells[Arrangement.ALL_LOCAL][0]
    caching_gain = cells[Arrangement.ALL_REMOTE][0] - cells[Arrangement.ALL_REMOTE][2]
    assert caching_gain > 3 * colocation_gain


def test_import_of_clearinghouse_service():
    """Binding through the *other* name service: same client code path."""
    testbed = build_testbed(seed=4)
    stack = build_stack(testbed, Arrangement.ALL_LOCAL, name_service="CH-hcs")
    binding = run(
        testbed.env, stack.importer.import_binding("PrintService", DLION)
    )
    assert binding.suite == "courier"
    assert binding.endpoint.port == 6001


def test_imported_binding_is_callable():
    """The returned Binding works: call the target service through HRPC."""
    testbed = build_testbed(seed=5)
    stack = build_stack(testbed, Arrangement.ALL_LOCAL)
    env = testbed.env
    binding = run(env, stack.importer.import_binding("DesiredService", FIJI))
    runtime = HrpcRuntime(testbed.client, testbed.internet)
    result = run(env, runtime.call(binding, "ping", "hello"))
    assert result == ("pong", "hello")


def test_import_requires_service_name():
    testbed = build_testbed(seed=3)
    stack = build_stack(testbed, Arrangement.ALL_LOCAL)

    def scenario():
        with pytest.raises(ValueError):
            yield from stack.importer.import_binding("", FIJI)
        return "done"

    assert run(testbed.env, scenario()) == "done"


def test_importer_must_be_wired_via_classmethods():
    """The bare constructor carries no mode; unwired importers refuse."""
    testbed = build_testbed(seed=3)
    importer = HrpcImporter(testbed.client)  # neither .direct nor .via_agent

    def scenario():
        with pytest.raises(HnsError):
            yield from importer.import_binding("DesiredService", FIJI)
        return "done"

    assert run(testbed.env, scenario()) == "done"
    # The old dual-mode keyword constructor is gone for good.
    with pytest.raises(TypeError):
        HrpcImporter(testbed.client, finder=None, nsm_stub=None)


def test_arrangement_metadata():
    assert Arrangement.ALL_LOCAL.remote_calls == 0
    assert Arrangement.ALL_REMOTE.remote_calls == 2
    for arrangement in Arrangement:
        assert "[" in arrangement.label
    testbed = build_testbed(seed=3)
    stack = build_stack(testbed, Arrangement.AGENT)
    assert "agent" in stack.describe() or "[Client]" in stack.describe()


def test_import_records_latency_stats():
    testbed = build_testbed(seed=3)
    stack = build_stack(testbed, Arrangement.ALL_LOCAL)
    run(testbed.env, stack.importer.import_binding("DesiredService", FIJI))
    timer = testbed.env.stats.timer("hrpc.import_ms")
    assert timer.count == 1
    assert timer.mean > 100
