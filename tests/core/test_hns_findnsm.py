"""FindNSM: the six-mapping sequence, caching, and error paths."""

import pytest

from repro.core import (
    HNSName,
    HnsError,
    LocalNsmBinding,
    NsmNotFound,
    QueryClassUnsupported,
)
from repro.hrpc import HRPCBinding
from repro.workloads.scenarios import BIND_NS, NSM_PORT

from tests.core.conftest import run

FIJI = HNSName("BIND-cs", "fiji.cs.washington.edu")


def test_findnsm_returns_binding_for_remote_nsm(testbed):
    hns = testbed.make_hns(testbed.client)
    binding = run(testbed.env, hns.find_nsm(FIJI, "HRPCBinding"))
    assert isinstance(binding, HRPCBinding)
    assert binding.program == f"nsm.HRPCBinding-{BIND_NS}"
    assert binding.endpoint.address == testbed.nsm_host.address
    assert binding.endpoint.port == NSM_PORT
    assert binding.metadata["nsm"] == f"HRPCBinding-{BIND_NS}"


def test_findnsm_returns_local_binding_when_linked(testbed):
    hns = testbed.make_hns(testbed.client)
    nsm = testbed.make_bind_binding_nsm(testbed.client)
    hns.link_local_nsm(nsm)
    binding = run(testbed.env, hns.find_nsm(FIJI, "HRPCBinding"))
    assert isinstance(binding, LocalNsmBinding)
    assert binding.nsm is nsm


def test_findnsm_unknown_query_class(testbed):
    hns = testbed.make_hns(testbed.client)

    def scenario():
        with pytest.raises(QueryClassUnsupported):
            yield from hns.find_nsm(FIJI, "Astrology")
        return "done"

    assert run(testbed.env, scenario()) == "done"


def test_findnsm_unknown_context(testbed):
    from repro.core import ContextNotFound

    hns = testbed.make_hns(testbed.client)

    def scenario():
        with pytest.raises(ContextNotFound):
            yield from hns.find_nsm(HNSName("Nowhere", "x"), "HRPCBinding")
        return "done"

    assert run(testbed.env, scenario()) == "done"


def test_findnsm_cold_cost_matches_paper_decomposition(testbed):
    """Cold FindNSM = six missing mappings ~ (460 - import machinery - NSM work)."""
    env = testbed.env
    hns = testbed.make_hns(testbed.client)
    start = env.now
    run(env, hns.find_nsm(FIJI, "HRPCBinding"))
    cold = env.now - start
    assert cold == pytest.approx(287.7, rel=0.02)


def test_findnsm_warm_cost_is_six_cache_hits(testbed):
    env = testbed.env
    hns = testbed.make_hns(testbed.client)
    run(env, hns.find_nsm(FIJI, "HRPCBinding"))
    start = env.now
    run(env, hns.find_nsm(FIJI, "HRPCBinding"))
    warm = env.now - start
    # 6 demarshalled hits (~0.83 each) + fixed bookkeeping.
    assert warm == pytest.approx(6 * 0.83 + 2.0, rel=0.02)


def test_findnsm_caching_gain_matches_paper_shape(testbed):
    """'460 msec ... reduced to 88' — a large multiple either way."""
    env = testbed.env
    hns = testbed.make_hns(testbed.client)
    start = env.now
    run(env, hns.find_nsm(FIJI, "HRPCBinding"))
    cold = env.now - start
    start = env.now
    run(env, hns.find_nsm(FIJI, "HRPCBinding"))
    warm = env.now - start
    assert cold / warm > 5.0


def test_findnsm_shares_name_service_entries_across_contexts(testbed):
    """'if more than one context is stored on the same name service, the
    binding information for that name service need only be stored once'
    — a second context on the same NS misses only its own context entry."""
    env = testbed.env
    ms = testbed.make_metastore(testbed.client)
    run(env, ms.register_context("BIND-alias", BIND_NS))
    hns = testbed.make_hns(testbed.client)
    run(env, hns.find_nsm(FIJI, "HRPCBinding"))  # warm everything
    start = env.now
    run(
        env,
        hns.find_nsm(HNSName("BIND-alias", "june.cs.washington.edu"), "HRPCBinding"),
    )
    second = env.now - start
    # Only mapping 1 (the new context) misses; the other five hit.
    assert second < 0.30 * 287


def test_nsm_not_linked_and_not_servable_raises(testbed):
    env = testbed.env
    ms = testbed.make_metastore(testbed.client)
    admin_gen = ms.register_nsm(
        __import__("repro.core", fromlist=["NsmRecord"]).NsmRecord(
            name="LinkOnly",
            query_class="MailboxLocation",
            name_service=BIND_NS,
            host_name="nowhere.cs.washington.edu",
            host_context="BIND-srv",
            program="nsm.LinkOnly",
            suite="sunrpc",
            port=0,
        )
    )
    run(env, admin_gen)
    run(env, ms.register_query_mapping(BIND_NS, "MailboxLocation", "LinkOnly"))
    hns = testbed.make_hns(testbed.client)

    def scenario():
        with pytest.raises(NsmNotFound):
            yield from hns.find_nsm(FIJI, "MailboxLocation")
        return "done"

    assert run(env, scenario()) == "done"


def test_missing_static_hostaddr_nsm_raises(testbed):
    from repro.core.hns import HNS

    hns = HNS(testbed.make_metastore(testbed.client))  # nothing linked

    def scenario():
        with pytest.raises(HnsError):
            yield from hns.find_nsm(FIJI, "HRPCBinding")
        return "done"

    assert run(testbed.env, scenario()) == "done"


def test_link_validation(testbed):
    hns = testbed.make_hns(testbed.client)
    with pytest.raises(ValueError):
        hns.link_host_address_nsm(
            BIND_NS, testbed.make_bind_binding_nsm(testbed.client)
        )
    with pytest.raises(ValueError):
        hns.link_host_address_nsm(
            BIND_NS, testbed.make_bind_hostaddr_nsm(testbed.nsm_host)
        )
    with pytest.raises(ValueError):
        hns.link_local_nsm(testbed.make_bind_binding_nsm(testbed.nsm_host))


def test_hns_preload_guarantees_hits(testbed):
    """'preloading ... required to guarantee HNS cache hits'."""
    env = testbed.env
    hns = testbed.make_hns(testbed.client)
    loaded = run(env, hns.preload())
    assert loaded > 10
    start = env.now
    run(env, hns.find_nsm(FIJI, "HRPCBinding"))
    first_after_preload = env.now - start
    assert first_after_preload < 10.0  # all six mappings hit


def test_preload_cost_matches_paper(testbed):
    """'The actual preload cost was measured to be about 390 msec.'"""
    env = testbed.env
    hns = testbed.make_hns(testbed.client)
    start = env.now
    run(env, hns.preload())
    assert env.now - start == pytest.approx(390.0, rel=0.1)
