"""Batched meta lookups: find_nsm_bundle vs the sequential trio."""

import pytest

from repro.core import ContextNotFound, NsmNotFound
from repro.resolution import FastPathPolicy
from repro.workloads.scenarios import BIND_NS

from tests.core.conftest import run


def meta_requests(env):
    return env.stats.counter("bind.meta-bind.requests").value


def test_cold_bundle_is_one_round_trip(testbed):
    """Mappings 1-3 cold: one chained batch instead of three lookups."""
    ms = testbed.make_metastore(testbed.client, fast_path=FastPathPolicy())
    env = testbed.env
    before = meta_requests(env)
    ns_name, nsm_name, record = run(
        env, ms.find_nsm_bundle("BIND-cs", "HRPCBinding")
    )
    assert meta_requests(env) - before == 1
    assert ns_name == BIND_NS
    assert nsm_name == f"HRPCBinding-{BIND_NS}"
    assert record.program == f"nsm.{nsm_name}"


def test_bundle_matches_sequential_mappings(testbed):
    """The batch answers exactly what the three sequential calls do."""
    env = testbed.env
    fast = testbed.make_metastore(testbed.client, fast_path=FastPathPolicy())
    slow = testbed.make_metastore(testbed.client)
    bundle = run(env, fast.find_nsm_bundle("BIND-cs", "MailboxLocation"))
    ns_name = run(env, slow.context_to_name_service("BIND-cs"))
    nsm_name = run(env, slow.nsm_name_for(ns_name, "MailboxLocation"))
    record = run(env, slow.nsm_record(nsm_name))
    assert bundle == (ns_name, nsm_name, record)


def test_warm_bundle_sends_nothing(testbed):
    """A fully cached prefix is resolved locally: zero datagrams."""
    ms = testbed.make_metastore(testbed.client, fast_path=FastPathPolicy())
    env = testbed.env
    first = run(env, ms.find_nsm_bundle("BIND-cs", "HRPCBinding"))
    before = meta_requests(env)
    second = run(env, ms.find_nsm_bundle("BIND-cs", "HRPCBinding"))
    assert second == first
    assert meta_requests(env) - before == 0


def test_bundle_unknown_context_raises(testbed):
    ms = testbed.make_metastore(testbed.client, fast_path=FastPathPolicy())

    def scenario():
        with pytest.raises(ContextNotFound):
            yield from ms.find_nsm_bundle("Mars", "HRPCBinding")
        return "done"

    assert run(testbed.env, scenario()) == "done"


def test_bundle_unknown_query_class_raises(testbed):
    """A broken chain (no q mapping) surfaces as the sequential path's
    NsmNotFound, not as a batch-level error."""
    ms = testbed.make_metastore(testbed.client, fast_path=FastPathPolicy())

    def scenario():
        with pytest.raises(NsmNotFound):
            yield from ms.find_nsm_bundle("BIND-cs", "MailboxLocation2")
        return "done"

    assert run(testbed.env, scenario()) == "done"


def test_bundle_missing_nsm_record_raises(testbed):
    """The q mapping resolves but its NSM record is gone: stage-2 error."""
    ms = testbed.make_metastore(testbed.client, fast_path=FastPathPolicy())
    env = testbed.env
    run(env, ms.unregister(f"HRPCBinding-{BIND_NS}.nsm.hns"))

    def scenario():
        with pytest.raises(NsmNotFound):
            yield from ms.find_nsm_bundle("BIND-cs", "HRPCBinding")
        return "done"

    assert run(env, scenario()) == "done"
