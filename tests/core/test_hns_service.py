"""The HNS exposed as a remote HRPC service."""

import pytest

from repro.core import HNSName, HnsError, serve_hns
from repro.hrpc import HRPCBinding, HrpcRuntime, HrpcServer
from repro.workloads.scenarios import HNS_PORT

from tests.core.conftest import run

FIJI = HNSName("BIND-cs", "fiji.cs.washington.edu")


def test_serve_hns_requires_colocation(testbed):
    hns = testbed.make_hns(testbed.client)
    server = HrpcServer(testbed.hns_host)
    with pytest.raises(ValueError):
        serve_hns(hns, server)


def test_remote_findnsm_returns_binding(testbed):
    env = testbed.env
    hns = testbed.make_hns(testbed.hns_host)
    server = HrpcServer(testbed.hns_host)
    serve_hns(hns, server)
    server.listen(HNS_PORT)
    runtime = HrpcRuntime(testbed.client, testbed.internet)
    hns_binding = HRPCBinding(
        server.endpoint, "hns", suite="sunrpc"
    )
    binding = run(
        env, runtime.call(hns_binding, "FindNSM", str(FIJI), "HRPCBinding")
    )
    assert isinstance(binding, HRPCBinding)
    assert binding.metadata["nsm"] == "HRPCBinding-BIND-cs"


def test_remote_findnsm_rejects_server_linked_nsm(testbed):
    """An NSM linked into the HNS *server* process is not callable by a
    remote client; the service surfaces that as an error rather than
    handing out a dangling local reference."""
    env = testbed.env
    hns = testbed.make_hns(testbed.hns_host)
    nsm = testbed.make_bind_binding_nsm(testbed.hns_host)
    hns.link_local_nsm(nsm)
    server = HrpcServer(testbed.hns_host)
    serve_hns(hns, server)
    server.listen(HNS_PORT)
    runtime = HrpcRuntime(testbed.client, testbed.internet)
    hns_binding = HRPCBinding(server.endpoint, "hns", suite="sunrpc")

    def scenario():
        with pytest.raises(HnsError, match="not callable remotely"):
            yield from runtime.call(
                hns_binding, "FindNSM", str(FIJI), "HRPCBinding"
            )
        return "done"

    assert run(env, scenario()) == "done"


def test_remote_findnsm_propagates_lookup_errors(testbed):
    from repro.core import ContextNotFound

    env = testbed.env
    hns = testbed.make_hns(testbed.hns_host)
    server = HrpcServer(testbed.hns_host)
    serve_hns(hns, server)
    server.listen(HNS_PORT)
    runtime = HrpcRuntime(testbed.client, testbed.internet)
    hns_binding = HRPCBinding(server.endpoint, "hns", suite="sunrpc")

    def scenario():
        with pytest.raises(ContextNotFound):
            yield from runtime.call(
                hns_binding, "FindNSM", "Nowhere::name", "HRPCBinding"
            )
        return "done"

    assert run(env, scenario()) == "done"
