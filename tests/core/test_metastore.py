"""Meta-naming store: mappings, registration, field encoding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ContextNotFound, HnsError, NsmNotFound, NsmRecord
from repro.core.metastore import decode_fields, encode_fields
from repro.workloads.scenarios import BIND_NS, CH_NS

from tests.core.conftest import run


# ----------------------------------------------------------------------
# Field encoding
# ----------------------------------------------------------------------
def test_encode_decode_fields_roundtrip():
    data = encode_fields(ns="BIND-cs", port=53, host="a.b.c")
    assert decode_fields(data) == {"ns": "BIND-cs", "port": "53", "host": "a.b.c"}


def test_encode_fields_rejects_reserved_chars():
    with pytest.raises(ValueError):
        encode_fields(bad="a;b")
    with pytest.raises(ValueError):
        encode_fields(bad="a=b")


def test_decode_fields_rejects_garbage():
    with pytest.raises(ValueError):
        decode_fields(b"no-equals-sign")
    assert decode_fields(b"") == {}


fields_strategy = st.dictionaries(
    st.from_regex(r"[a-z][a-z0-9]{0,8}", fullmatch=True),
    st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126, blacklist_characters="=;"),
        min_size=1,
        max_size=20,
    ),
    min_size=1,
    max_size=6,
)


@given(fields_strategy)
@settings(max_examples=50, deadline=None)
def test_fields_roundtrip_property(fields):
    assert decode_fields(encode_fields(**fields)) == fields


# ----------------------------------------------------------------------
# Mappings against the registered testbed
# ----------------------------------------------------------------------
def test_context_to_name_service(testbed):
    ms = testbed.make_metastore(testbed.client)
    assert run(testbed.env, ms.context_to_name_service("BIND-cs")) == BIND_NS
    assert run(testbed.env, ms.context_to_name_service("CH-hcs")) == CH_NS


def test_unknown_context_raises(testbed):
    ms = testbed.make_metastore(testbed.client)

    def scenario():
        with pytest.raises(ContextNotFound):
            yield from ms.context_to_name_service("Mars")
        return "done"

    assert run(testbed.env, scenario()) == "done"


def test_nsm_name_and_record(testbed):
    ms = testbed.make_metastore(testbed.client)
    nsm_name = run(testbed.env, ms.nsm_name_for(BIND_NS, "HRPCBinding"))
    assert nsm_name == f"HRPCBinding-{BIND_NS}"
    record = run(testbed.env, ms.nsm_record(nsm_name))
    assert record.query_class == "HRPCBinding"
    assert record.name_service == BIND_NS
    assert record.program == f"nsm.{nsm_name}"
    assert record.port > 0


def test_unknown_query_mapping_raises(testbed):
    ms = testbed.make_metastore(testbed.client)

    def scenario():
        with pytest.raises(NsmNotFound):
            yield from ms.nsm_name_for(BIND_NS, "MailboxLocation2")
        with pytest.raises(NsmNotFound):
            yield from ms.nsm_record("ghost-nsm")
        with pytest.raises(HnsError):
            yield from ms.name_service_record("ghost-ns")
        return "done"

    assert run(testbed.env, scenario()) == "done"


def test_name_service_record(testbed):
    ms = testbed.make_metastore(testbed.client)
    record = run(testbed.env, ms.name_service_record(BIND_NS))
    assert record.kind == "bind"
    assert record.port == 53
    ch = run(testbed.env, ms.name_service_record(CH_NS))
    assert ch.kind == "clearinghouse"


def test_nsm_host_address(testbed):
    ms = testbed.make_metastore(testbed.client)
    address = run(
        testbed.env, ms.nsm_host_address("nsmhost.cs.washington.edu")
    )
    assert address == str(testbed.nsm_host.address)


def test_mapping_results_are_cached(testbed):
    ms = testbed.make_metastore(testbed.client)
    env = testbed.env
    run(env, ms.context_to_name_service("BIND-cs"))
    before = env.now
    run(env, ms.context_to_name_service("BIND-cs"))
    assert env.now - before < 2.0  # demarshalled hit, not a remote call
    assert ms.cache.hits == 1


def test_registration_invalidates_cache(testbed):
    """A re-registered context is visible immediately through the same store."""
    ms = testbed.make_metastore(testbed.client)
    env = testbed.env
    assert run(env, ms.context_to_name_service("BIND-cs")) == BIND_NS
    run(env, ms.register_context("BIND-cs", "OtherNS"))
    assert run(env, ms.context_to_name_service("BIND-cs")) == "OtherNS"
    run(env, ms.register_context("BIND-cs", BIND_NS))  # restore


def test_unregister_context(testbed):
    ms = testbed.make_metastore(testbed.client)
    env = testbed.env
    run(env, ms.register_context("Temp", BIND_NS))
    assert run(env, ms.context_to_name_service("Temp")) == BIND_NS
    run(env, ms.unregister("temp.ctx.hns"))

    def scenario():
        with pytest.raises(ContextNotFound):
            yield from ms.context_to_name_service("Temp")
        return "done"

    assert run(env, scenario()) == "done"


def test_nsm_record_roundtrip():
    record = NsmRecord(
        name="HRPCBinding-X",
        query_class="HRPCBinding",
        name_service="X",
        host_name="h.dom",
        host_context="ctx",
        program="nsm.HRPCBinding-X",
        suite="courier",
        port=7100,
    )
    assert NsmRecord.from_fields("HRPCBinding-X", record.to_fields()) == record


def test_nsm_record_rejects_unknown_suite():
    with pytest.raises(KeyError):
        NsmRecord.from_fields(
            "x",
            b"qc=HRPCBinding;ns=X;host=h;hostctx=c;prog=p;suite=warp;port=1",
        )


def test_preload_fills_cache(testbed):
    ms = testbed.make_metastore(testbed.client)
    env = testbed.env
    count = run(env, ms.preload())
    assert count > 10
    # Post-preload lookups are hits (no remote traffic).
    before = env.stats.counters().get(f"bind.meta@{testbed.client.name}.remote_lookups", 0)
    run(env, ms.context_to_name_service("BIND-cs"))
    after = env.stats.counters().get(f"bind.meta@{testbed.client.name}.remote_lookups", 0)
    assert before == after


def test_meta_zone_is_about_2kb(testbed):
    """'the relatively small amount of information (currently about 2KB)'."""
    from repro.bind import DomainName

    zone = testbed.meta_server.zone_named(DomainName("hns"))
    assert 1000 < zone.wire_size() < 4000
