"""Concrete NSMs: identical interfaces, heterogeneous implementations."""

import pytest

from repro.core import HNSName, NsmResult, NsmStub, serve_nsm
from repro.hrpc import HrpcRuntime, HrpcServer, HRPCBinding
from repro.net.addresses import Endpoint
from repro.workloads.scenarios import BIND_NS

from tests.core.conftest import run

FIJI = HNSName("BIND-cs", "fiji.cs.washington.edu")
DLION = HNSName("CH-hcs", "dlion:hcs:uw")


# ----------------------------------------------------------------------
# Binding NSMs
# ----------------------------------------------------------------------
def test_bind_binding_nsm_resolves_sun_service(testbed):
    nsm = testbed.make_bind_binding_nsm(testbed.client)
    result = run(testbed.env, nsm.query(FIJI, service="DesiredService"))
    assert result.query_class == "HRPCBinding"
    assert result.value["suite"] == "sunrpc"
    assert result.value["endpoint"] == Endpoint(testbed.fiji.address, 9999)


def test_ch_binding_nsm_resolves_courier_service(testbed):
    nsm = testbed.make_ch_binding_nsm(testbed.client)
    result = run(testbed.env, nsm.query(DLION, service="PrintService"))
    assert result.query_class == "HRPCBinding"
    assert result.value["suite"] == "courier"
    assert result.value["endpoint"] == Endpoint(testbed.dlion.address, 6001)


def test_binding_nsms_share_an_interface(testbed):
    """Same query-class call shape, same standardized result fields."""
    bind_nsm = testbed.make_bind_binding_nsm(testbed.client)
    ch_nsm = testbed.make_ch_binding_nsm(testbed.client)
    r1 = run(testbed.env, bind_nsm.query(FIJI, service="DesiredService"))
    r2 = run(testbed.env, ch_nsm.query(DLION, service="PrintService"))
    assert set(r1.value) == set(r2.value)


def test_binding_nsm_requires_service_param(testbed):
    nsm = testbed.make_bind_binding_nsm(testbed.client)

    def scenario():
        with pytest.raises(ValueError):
            yield from nsm.query(FIJI)
        return "done"

    assert run(testbed.env, scenario()) == "done"


def test_binding_nsm_cache_differentiates_services(testbed):
    pm = None
    for port, svc in ((9999, "DesiredService"),):
        pass
    # Register a second service on fiji.
    fiji_pm = testbed.fiji.service_at(111)
    fiji_pm.register_local("OtherService", 9998)
    nsm = testbed.make_bind_binding_nsm(testbed.client)
    r1 = run(testbed.env, nsm.query(FIJI, service="DesiredService"))
    r2 = run(testbed.env, nsm.query(FIJI, service="OtherService"))
    assert r1.value["endpoint"].port == 9999
    assert r2.value["endpoint"].port == 9998


def test_nsm_miss_cost_and_hit_cost(testbed):
    env = testbed.env
    nsm = testbed.make_bind_binding_nsm(testbed.client)
    start = env.now
    run(env, nsm.query(FIJI, service="DesiredService"))
    miss = env.now - start
    start = env.now
    result = run(env, nsm.query(FIJI, service="DesiredService"))
    hit = env.now - start
    assert result.from_cache
    assert miss == pytest.approx(79.0, rel=0.02)
    assert hit == pytest.approx(3.0, rel=0.02)


def test_uncached_nsm_always_does_native_work(testbed):
    env = testbed.env
    nsm = testbed.make_bind_binding_nsm(testbed.client, cached=False)
    run(env, nsm.query(FIJI, service="DesiredService"))
    start = env.now
    result = run(env, nsm.query(FIJI, service="DesiredService"))
    assert not result.from_cache
    assert env.now - start > 50


def test_nsm_cache_respects_ttl(testbed):
    from repro.bind import ResourceRecord, RRType

    env = testbed.env
    zone = testbed.public_server.zones[0]
    zone.replace(
        "fiji.cs.washington.edu",
        RRType.A,
        [
            ResourceRecord.a_record(
                "fiji.cs.washington.edu", str(testbed.fiji.address), ttl=100
            )
        ],
    )
    nsm = testbed.make_bind_binding_nsm(testbed.client)
    run(env, nsm.query(FIJI, service="DesiredService"))
    env.run(until=env.now + 150)
    result = run(env, nsm.query(FIJI, service="DesiredService"))
    assert not result.from_cache  # expired, re-resolved natively


# ----------------------------------------------------------------------
# HostAddress NSMs
# ----------------------------------------------------------------------
def test_hostaddr_nsms_both_systems(testbed):
    bind_nsm = testbed.make_bind_hostaddr_nsm(testbed.client)
    ch_nsm = testbed.make_ch_hostaddr_nsm(testbed.client)
    r1 = run(testbed.env, bind_nsm.query(FIJI))
    r2 = run(testbed.env, ch_nsm.query(DLION))
    assert r1.value["address"] == str(testbed.fiji.address)
    assert r2.value["address"] == str(testbed.dlion.address)


def test_hostaddr_costs_are_native(testbed):
    """Linked-in HostAddress NSMs cost exactly the native lookup."""
    env = testbed.env
    bind_nsm = testbed.make_bind_hostaddr_nsm(testbed.client)
    start = env.now
    run(env, bind_nsm.query(FIJI))
    assert env.now - start == pytest.approx(27.0 + 0.7, rel=0.05)  # + probe/insert
    start = env.now
    run(env, bind_nsm.query(FIJI))
    assert env.now - start == pytest.approx(0.83, rel=0.02)


def test_ch_hostaddr_validates_local_syntax(testbed):
    ch_nsm = testbed.make_ch_hostaddr_nsm(testbed.client)

    def scenario():
        with pytest.raises(ValueError):
            yield from ch_nsm.query(HNSName("CH-hcs", "not-a-ch-name"))
        return "done"

    assert run(testbed.env, scenario()) == "done"


# ----------------------------------------------------------------------
# Mail and FileService NSMs
# ----------------------------------------------------------------------
def test_mail_nsms(testbed):
    bind_mail = testbed.make_bind_mail_nsm(testbed.client)
    ch_mail = testbed.make_ch_mail_nsm(testbed.client)
    r1 = run(
        testbed.env,
        bind_mail.query(HNSName("BIND-cs", "schwartz.cs.washington.edu")),
    )
    assert r1.value == {
        "mail_host": "june.cs.washington.edu",
        "mailbox": "schwartz",
    }
    r2 = run(testbed.env, ch_mail.query(HNSName("CH-hcs", "levy:hcs:uw")))
    assert r2.value == {"mail_host": "dlion:hcs:uw", "mailbox": "levy"}
    assert set(r1.value) == set(r2.value)


def test_file_nsms(testbed):
    bind_file = testbed.make_bind_file_nsm(testbed.client)
    ch_file = testbed.make_ch_file_nsm(testbed.client)
    r1 = run(
        testbed.env,
        bind_file.query(HNSName("BIND-cs", "src.projects.cs.washington.edu")),
    )
    assert r1.value["volume"] == "/projects/src"
    assert r1.value["endpoint"].address == testbed.fiji.address
    r2 = run(testbed.env, ch_file.query(HNSName("CH-hcs", "docs:hcs:uw")))
    assert r2.value["volume"] == "/docs"
    assert r2.value["suite"] == "courier"


# ----------------------------------------------------------------------
# NSM framework mechanics
# ----------------------------------------------------------------------
def test_nsm_result_validates_interface():
    with pytest.raises(Exception):
        NsmResult("HRPCBinding", {"wrong": 1})


def test_nsm_subclass_must_set_query_class(testbed):
    from repro.core.nsm import NamingSemanticsManager

    class Bad(NamingSemanticsManager):
        pass

    with pytest.raises(TypeError):
        Bad(testbed.client, BIND_NS)


def test_serve_nsm_and_remote_stub(testbed):
    env = testbed.env
    nsm = testbed.make_bind_binding_nsm(testbed.nsm_host)
    server = HrpcServer(testbed.nsm_host)
    program = serve_nsm(server, nsm)
    endpoint = server.listen(9100)
    runtime = HrpcRuntime(testbed.client, testbed.internet)
    stub = NsmStub(testbed.client, runtime)
    binding = HRPCBinding(endpoint, program, suite="sunrpc")
    result = run(env, stub.call(binding, FIJI, service="DesiredService"))
    assert result.value["endpoint"].port == 9999


def test_serve_nsm_requires_colocation(testbed):
    nsm = testbed.make_bind_binding_nsm(testbed.client)
    server = HrpcServer(testbed.nsm_host)
    with pytest.raises(ValueError):
        serve_nsm(server, nsm)


def test_stub_without_runtime_rejects_remote(testbed):
    stub = NsmStub(testbed.client)
    binding = HRPCBinding(
        Endpoint(testbed.nsm_host.address, 9100), "nsm.x", suite="sunrpc"
    )

    def scenario():
        with pytest.raises(ValueError):
            yield from stub.call(binding, FIJI, service="s")
        return "done"

    assert run(testbed.env, scenario()) == "done"


def test_stub_prefers_local_copy(testbed):
    """A binding naming a locally linked NSM short-circuits the network."""
    env = testbed.env
    local_nsm = testbed.make_bind_binding_nsm(testbed.client)
    stub = NsmStub(testbed.client, local_nsms={local_nsm.name: local_nsm})
    binding = HRPCBinding(
        Endpoint(testbed.nsm_host.address, 9100),
        f"nsm.{local_nsm.name}",
        suite="sunrpc",
        metadata={"nsm": local_nsm.name},
    )
    # No NSM server was ever started on nsm_host:9100 — this would fail
    # if the stub actually went remote.
    result = run(env, stub.call(binding, FIJI, service="DesiredService"))
    assert result.value["endpoint"].port == 9999
