"""Kernel clock/queue behaviour."""

import pytest

from repro.sim import Environment, SimulationError


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(5)
        return env.now

    p = env.process(proc())
    assert env.run(until=p) == 5.0
    assert env.now == 5.0


def test_run_until_time_stops_at_horizon():
    env = Environment()
    seen = []

    def proc():
        for _ in range(10):
            yield env.timeout(3)
            seen.append(env.now)

    env.process(proc())
    env.run(until=10)
    assert env.now == 10.0
    assert seen == [3.0, 6.0, 9.0]


def test_run_until_past_raises():
    env = Environment()
    env.run(until=10)
    with pytest.raises(SimulationError):
        env.run(until=5)


def test_run_drains_queue_when_no_until():
    env = Environment()

    def proc():
        yield env.timeout(7)

    env.process(proc())
    env.run()
    assert env.now == 7.0
    assert env.peek() == float("inf")


def test_events_fire_in_time_order():
    env = Environment()
    order = []

    def waiter(delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(waiter(5, "b"))
    env.process(waiter(1, "a"))
    env.process(waiter(9, "c"))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fire_fifo():
    env = Environment()
    order = []

    def waiter(tag):
        yield env.timeout(4)
        order.append(tag)

    for tag in range(6):
        env.process(waiter(tag))
    env.run()
    assert order == list(range(6))


def test_step_on_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_run_until_event_deadlock_detected():
    env = Environment()
    never = env.event()

    def proc():
        yield never

    env.process(proc())
    with pytest.raises(SimulationError):
        env.run(until=never)


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_nested_process_composition():
    env = Environment()

    def inner():
        yield env.timeout(3)
        return "inner-done"

    def outer():
        result = yield env.process(inner())
        yield env.timeout(2)
        return result + "/outer-done"

    p = env.process(outer())
    assert env.run(until=p) == "inner-done/outer-done"
    assert env.now == 5.0


def test_failed_process_raises_at_run():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise ValueError("boom")

    env.process(bad())
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_run_until_failed_event_raises_and_does_not_double_report():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise KeyError("gone")

    p = env.process(bad())
    with pytest.raises(KeyError):
        env.run(until=p)


def test_two_environments_are_independent():
    env1, env2 = Environment(), Environment()

    def proc(env):
        yield env.timeout(4)

    env1.process(proc(env1))
    env1.run()
    assert env1.now == 4.0
    assert env2.now == 0.0
