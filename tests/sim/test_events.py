"""Event lifecycle, conditions, and failure semantics."""

import pytest

from repro.sim import Environment


def test_event_value_before_trigger_raises():
    env = Environment()
    e = env.event()
    assert not e.triggered
    with pytest.raises(RuntimeError):
        e.value
    with pytest.raises(RuntimeError):
        e.ok


def test_event_succeed_carries_value():
    env = Environment()
    e = env.event()
    e.succeed(42)
    env.run()
    assert e.triggered and e.processed and e.ok
    assert e.value == 42


def test_event_double_trigger_rejected():
    env = Environment()
    e = env.event()
    e.succeed(1)
    with pytest.raises(RuntimeError):
        e.succeed(2)
    with pytest.raises(RuntimeError):
        e.fail(ValueError())


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_failed_event_raises_in_waiter():
    env = Environment()
    e = env.event()

    def waiter():
        with pytest.raises(ValueError, match="remote down"):
            yield e
        return "handled"

    p = env.process(waiter())
    e.fail(ValueError("remote down"))
    assert env.run(until=p) == "handled"


def test_unwaited_failed_event_surfaces_at_run():
    env = Environment()
    env.event().fail(RuntimeError("nobody listening"))
    with pytest.raises(RuntimeError, match="nobody listening"):
        env.run()


def test_defused_failure_is_silent():
    env = Environment()
    e = env.event()
    e.fail(RuntimeError("ignored"))
    e.defuse()
    env.run()  # no raise


def test_waiting_on_processed_event_resumes_immediately():
    env = Environment()
    e = env.event()
    e.succeed("early")
    env.run()

    def late_waiter():
        value = yield e
        return value

    p = env.process(late_waiter())
    assert env.run(until=p) == "early"


def test_timeout_carries_value():
    env = Environment()

    def proc():
        value = yield env.timeout(2, value="payload")
        return value

    p = env.process(proc())
    assert env.run(until=p) == "payload"


def test_any_of_triggers_on_first():
    env = Environment()

    def proc():
        fast = env.timeout(1, value="fast")
        slow = env.timeout(10, value="slow")
        result = yield env.any_of([fast, slow])
        return result

    p = env.process(proc())
    result = env.run(until=p)
    assert list(result.values()) == ["fast"]
    assert env.now == 1.0


def test_all_of_waits_for_all():
    env = Environment()

    def proc():
        a = env.timeout(1, value="a")
        b = env.timeout(5, value="b")
        result = yield env.all_of([a, b])
        return sorted(result.values())

    p = env.process(proc())
    assert env.run(until=p) == ["a", "b"]
    assert env.now == 5.0


def test_any_of_failure_propagates():
    env = Environment()

    def failer():
        yield env.timeout(1)
        raise OSError("link dead")

    def proc():
        bad = env.process(failer())
        slow = env.timeout(50)
        with pytest.raises(OSError):
            yield env.any_of([bad, slow])
        return "ok"

    p = env.process(proc())
    assert env.run(until=p) == "ok"


def test_all_of_empty_sequence_triggers_immediately():
    env = Environment()

    def proc():
        result = yield env.all_of([])
        return result

    p = env.process(proc())
    assert env.run(until=p) == {}
    assert env.now == 0.0


def test_any_of_with_already_processed_child():
    env = Environment()
    e = env.event()
    e.succeed("done")
    env.run()

    def proc():
        result = yield env.any_of([e, env.timeout(100)])
        return result

    p = env.process(proc())
    result = env.run(until=p)
    assert "done" in result.values()
    assert env.now == 0.0
