"""Direct unit tests for the stats primitives (PR 5 satellite).

:mod:`tests.sim.test_rng_latency_stats` covers the basics; this module
pins the Histogram percentile edge cases (empty, single sample, p0/p100,
overflow bucket) and the snapshot shapes every primitive now exposes.
"""

import pytest

from repro.sim import Environment
from repro.sim.stats import Counter, Histogram, Timer


# ----------------------------------------------------------------------
# Histogram percentiles
# ----------------------------------------------------------------------
def test_histogram_percentile_empty_raises():
    h = Histogram("lat", [10, 20])
    with pytest.raises(ValueError):
        h.percentile(50)
    with pytest.raises(ValueError):
        h.minimum
    with pytest.raises(ValueError):
        h.maximum


def test_histogram_percentile_out_of_range():
    h = Histogram("lat", [10])
    h.record(5)
    with pytest.raises(ValueError):
        h.percentile(-1)
    with pytest.raises(ValueError):
        h.percentile(101)


def test_histogram_single_sample_is_exact_for_any_p():
    h = Histogram("lat", [10, 20, 30])
    h.record(17.5)
    for p in (0, 1, 50, 99, 100):
        assert h.percentile(p) == pytest.approx(17.5)


def test_histogram_p0_p100_are_true_extremes():
    h = Histogram("lat", [10, 20, 30])
    for v in (3, 12, 28, 29):
        h.record(v)
    assert h.percentile(0) == 3
    assert h.percentile(100) == 29
    assert h.minimum == 3
    assert h.maximum == 29


def test_histogram_overflow_bucket_reports_observed_max():
    h = Histogram("lat", [10])
    h.record(5)
    h.record(500)  # overflow bucket is unbounded above
    assert h.percentile(99) <= 500
    assert h.percentile(100) == 500


def test_histogram_percentile_interpolates_within_bucket():
    h = Histogram("lat", [10, 20])
    for _ in range(10):
        h.record(15)  # all mass in (10, 20]
    p50 = h.percentile(50)
    assert 10 <= p50 <= 20
    # Clamped to the observed range, not the bucket bound.
    assert h.percentile(1) >= 15 or h.percentile(1) >= 10
    assert h.percentile(100) == 15


def test_histogram_percentile_skips_empty_buckets():
    h = Histogram("lat", [1, 2, 3, 100])
    h.record(0.5)
    h.record(90)
    # The mass sits in the first and fourth buckets; the median must
    # land inside an occupied bucket's value range.
    assert 0.5 <= h.percentile(50) <= 90


def test_histogram_bucket_index():
    h = Histogram("lat", [10, 20])
    assert h.bucket_index(10) == 0
    assert h.bucket_index(10.1) == 1
    assert h.bucket_index(21) == 2  # overflow


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------
def test_counter_snapshot():
    c = Counter("calls")
    c.increment(3)
    assert c.snapshot() == {"value": 3}


def test_timer_snapshot_empty_and_full():
    t = Timer("lat")
    assert t.snapshot() == {"count": 0.0, "total": 0.0}
    for v in (10, 20, 30):
        t.record(v)
    snap = t.snapshot()
    assert snap["count"] == 3.0
    assert snap["total"] == pytest.approx(60.0)
    assert snap["mean"] == pytest.approx(20.0)
    assert snap["min"] == 10 and snap["max"] == 30
    assert snap["p50"] == pytest.approx(20.0)
    assert snap["stdev"] == pytest.approx(10.0)


def test_histogram_snapshot_empty_and_full():
    h = Histogram("lat", [10])
    snap = h.snapshot()
    assert snap["total"] == 0
    assert "min" not in snap and "max" not in snap
    h.record(4)
    h.record(40)
    snap = h.snapshot()
    assert snap["total"] == 2
    assert snap["min"] == 4 and snap["max"] == 40
    assert snap["buckets"] == [["<= 10", 1], ["> 10", 1]]


def test_registry_snapshot_accessors():
    env = Environment()
    env.stats.counter("sim.a").increment()
    env.stats.timer("sim.t").record(5.0)
    env.stats.histogram("sim.h", [10]).record(3.0)
    assert env.stats.counters() == {"sim.a": 1}
    assert env.stats.timers()["sim.t"]["count"] == 1.0
    assert env.stats.histograms()["sim.h"]["total"] == 1
