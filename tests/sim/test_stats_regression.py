"""Pinned old-vs-new stats outputs.

The stats overhaul (bisect histogram lookups, sort-once timer
snapshots, optional streaming timers) is a pure performance change:
the exact-mode numbers below were computed with the pre-overhaul
implementation (linear bucket scan, sort-per-snapshot) and are pinned
so any drift in the arithmetic — interpolation, bucket edges, stdev —
fails loudly instead of silently skewing every benchmark table.
"""

import random

import pytest

from repro.sim.stats import Histogram, StatsRegistry, Timer


def _samples():
    rng = random.Random(99)
    return [rng.expovariate(0.01) for _ in range(500)]


def test_timer_snapshot_pins_pre_overhaul_values():
    timer = Timer("t")
    for value in _samples():
        timer.record(value)
    snap = timer.snapshot()
    assert snap["count"] == 500
    assert snap["total"] == pytest.approx(48469.1342830597, abs=1e-9)
    assert snap["mean"] == pytest.approx(96.9382685661, abs=1e-9)
    assert snap["min"] == pytest.approx(0.0743020134, abs=1e-9)
    assert snap["max"] == pytest.approx(638.6122591591, abs=1e-9)
    assert snap["stdev"] == pytest.approx(99.9327817337, abs=1e-9)
    assert snap["p50"] == pytest.approx(61.6829664299, abs=1e-9)
    assert snap["p99"] == pytest.approx(480.8176243963, abs=1e-9)


def test_histogram_pins_pre_overhaul_values():
    hist = Histogram("h", bounds=[1.0, 5.0, 25.0, 125.0, 625.0])
    for value in _samples():
        hist.record(value)
    assert hist.counts == [5, 20, 90, 246, 138, 1]
    assert hist.percentile(50.0) == pytest.approx(79.8780487804878)
    assert hist.percentile(90.0) == pytest.approx(447.463768115942)
    assert hist.percentile(99.0) == pytest.approx(610.5072463768115)


def test_histogram_bucket_index_matches_linear_scan():
    bounds = [1.0, 5.0, 25.0, 125.0, 625.0]
    hist = Histogram("h", bounds=bounds)

    def linear(value):
        for index, bound in enumerate(bounds):
            if value <= bound:
                return index
        return len(bounds)

    rng = random.Random(5)
    probes = [0.0, 1.0, 1.5, 5.0, 624.9, 625.0, 10_000.0]
    probes += [rng.random() * 700 for _ in range(200)]
    for value in probes:
        assert hist.bucket_index(value) == linear(value)


def test_streaming_timer_approximates_exact_within_bucket_ratio():
    exact = Timer("t")
    streaming = Timer("t", streaming=True)
    for value in _samples():
        exact.record(value)
        streaming.record(value)
    assert streaming.samples is None  # bounded: no per-sample storage
    exact_snap = exact.snapshot()
    stream_snap = streaming.snapshot()
    # Aggregates are running sums: identical up to float noise.
    for key in ("count", "total", "mean", "min", "max", "stdev"):
        assert stream_snap[key] == pytest.approx(exact_snap[key], rel=1e-9)
    # Quantiles come from a 2^(1/8)-ratio geometric ladder: one bucket
    # is at most ~9.05% wide, so estimates stay within that band.
    for key in ("p50", "p99"):
        assert stream_snap[key] == pytest.approx(exact_snap[key], rel=0.1)


def test_registry_memoizes_and_guards_timer_mode():
    stats = StatsRegistry(env=None)
    timer = stats.timer("sim.test.latency")
    assert stats.timer("sim.test.latency") is timer
    with pytest.raises(ValueError):
        stats.timer("sim.test.latency", streaming=True)
