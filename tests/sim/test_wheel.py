"""The timer wheel vs the heap: one ordering contract, two back ends.

The wheel is only allowed to exist because it is digest-invisible:
every test here drives both back ends through the same schedule and
demands identical behaviour — identical pop order, identical peek
values, identical run digests — plus the structural edge cases the
wheel's bucket math has to survive (delay 0, far-future overflow into
the coarse level, ``run(until=<float>)`` parking the clock mid-slot,
mid-drain scheduling that forces a requeue).
"""

import random

import pytest

from repro.analysis.determinism import run_digest
from repro.sim import Environment
from repro.sim.wheel import HeapQueue, TimerWheel


class _Stub:
    """Entry payload; the queues never order or touch it."""

    __slots__ = ()


STUB = _Stub()


def _drain_order(queue):
    order = []
    while True:
        entry = queue.pop()
        if entry is None:
            return order
        order.append(entry[:2])


# ----------------------------------------------------------------------
# Property-style differential tests, raw queue level
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(10))
def test_random_schedule_pops_identically(seed):
    rng = random.Random(seed)
    wheel, heap = TimerWheel(), HeapQueue()
    eid = 0
    now = 0.0
    for _ in range(400):
        # A bursty mix: immediate, sub-slot, fine-horizon, far-future.
        delay = rng.choice(
            [0.0, rng.random(), rng.random() * 250, rng.random() * 3_000,
             rng.random() * 900_000]
        )
        wheel.push(now + delay, eid, STUB)
        heap.push(now + delay, eid, STUB)
        eid += 1
        if rng.random() < 0.3:
            a, b = wheel.pop(), heap.pop()
            assert a[:2] == b[:2]
            now = a[0]
    assert _drain_order(wheel) == _drain_order(heap)


@pytest.mark.parametrize("seed", range(5))
def test_random_schedule_peeks_identically(seed):
    rng = random.Random(1000 + seed)
    wheel, heap = TimerWheel(), HeapQueue()
    now = 0.0
    for eid in range(300):
        delay = rng.random() * rng.choice([1.0, 100.0, 500_000.0])
        wheel.push(now + delay, eid, STUB)
        heap.push(now + delay, eid, STUB)
        assert wheel.peek() == heap.peek()
        if rng.random() < 0.4:
            a, b = wheel.pop(), heap.pop()
            assert a[:2] == b[:2]
            now = a[0]
            assert wheel.peek() == heap.peek()


def test_same_time_entries_pop_fifo():
    wheel = TimerWheel()
    for eid in range(20):
        wheel.push(7.5, eid, STUB)
    assert _drain_order(wheel) == [(7.5, eid) for eid in range(20)]


def test_take_batch_and_requeue_round_trip():
    rng = random.Random(7)
    wheel, heap = TimerWheel(), HeapQueue()
    for eid in range(100):
        time = rng.random() * 400
        wheel.push(time, eid, STUB)
        heap.push(time, eid, STUB)
    for queue in (wheel, heap):
        batch = queue.take_batch()
        # Hand back everything after the first entry, then drain.
        queue.requeue(batch, 1)
    first = wheel.take_batch()[0]
    assert first == heap.take_batch()[0]


# ----------------------------------------------------------------------
# Edge cases through the kernel
# ----------------------------------------------------------------------
def _both_backends(build):
    """Run ``build(env)`` on both back ends; return their digests."""
    digests = []
    for impl in ("wheel", "heap"):
        env = Environment(seed=11, kernel_impl=impl)
        build(env)
        digests.append(run_digest(env))
    return digests


def test_zero_delay_storm_matches_heap():
    def build(env):
        hits = env.stats.counter("sim.test.hits")

        def proc(tag):
            for _ in range(50):
                yield env.timeout(0.0)
                hits.increment()

        for tag in range(20):
            env.process(proc(tag))
        env.run()
        assert env.now == 0.0

    a, b = _both_backends(build)
    assert a == b


def test_far_future_overflow_matches_heap():
    # Everything beyond the fine horizon: exercises the coarse epochs
    # and the epoch-heap rotation path.
    def build(env):
        done = env.stats.counter("sim.test.done")

        def proc(rng):
            for _ in range(10):
                yield env.timeout(rng.random() * 5_000_000)
                done.increment()

        for stream in range(10):
            env.process(proc(env.rng.stream(f"far.{stream}")))
        env.run()

    a, b = _both_backends(build)
    assert a == b


def test_run_until_float_straddles_rotation():
    # Park the clock between fine-wheel rotations, schedule into the
    # past-the-cursor slot, and keep going: the insort-into-active path.
    seen_by_impl = {}
    for impl in ("wheel", "heap"):
        env = Environment(kernel_impl=impl)
        seen = seen_by_impl.setdefault(impl, [])

        def proc():
            for _ in range(40):
                yield env.timeout(97.0)
                seen.append(env.now)

        env.process(proc())
        env.run(until=1000.5)
        assert env.now == 1000.5
        # Scheduling resumes correctly from the parked clock.
        env.process(proc())
        env.run(until=2000.25)
        assert env.now == 2000.25
        assert seen == sorted(seen)
    assert seen_by_impl["wheel"] == seen_by_impl["heap"]


def test_mid_drain_scheduling_requeues_in_order():
    # A process that schedules *earlier-than-the-batch-tail* work from
    # inside a callback: the careful-mode requeue path in the drain.
    def build(env):
        order = env.stats.counter("sim.test.ordered")
        times = []

        def spawner():
            yield env.timeout(10.0)
            env.process(child())
            yield env.timeout(100.0)

        def child():
            yield env.timeout(0.5)
            times.append(env.now)
            order.increment()

        def straggler():
            yield env.timeout(10.2)
            times.append(env.now)

        env.process(spawner())
        env.process(straggler())
        env.run()
        assert times == sorted(times)

    a, b = _both_backends(build)
    assert a == b


def test_kernel_counters_stay_out_of_stats():
    env = Environment(kernel_impl="wheel")

    def proc():
        yield env.timeout(0.0)
        yield env.timeout(300_000.0)

    env.process(proc())
    env.run()
    counters = env.kernel_counters()
    assert counters["sim.kernel.events_scheduled"] > 0
    # Back-end internals are opt-in: absent until published, so the
    # cross-back-end digest contract holds by default.
    assert "sim.kernel.events_scheduled" not in env.stats.counters()
    env.publish_kernel_stats()
    assert (
        env.stats.counter("sim.kernel.events_scheduled").value
        == counters["sim.kernel.events_scheduled"]
    )


def test_auto_kernel_impl_follows_recommendations():
    """``kernel_impl="auto"`` pins the measured per-workload winners:
    wheel for timer-dominated shapes, heap for churn-dominated ones,
    and the default when the shape is unknown."""
    from repro.sim.kernel import (
        DEFAULT_KERNEL_IMPL,
        KERNEL_IMPL_RECOMMENDATIONS,
        resolve_kernel_impl,
    )

    assert KERNEL_IMPL_RECOMMENDATIONS["standing_timers"] == "wheel"
    assert KERNEL_IMPL_RECOMMENDATIONS["pure_timeout"] == "wheel"
    assert KERNEL_IMPL_RECOMMENDATIONS["process_churn"] == "heap"
    assert KERNEL_IMPL_RECOMMENDATIONS["mixed_conditions"] == "heap"
    for workload, impl in KERNEL_IMPL_RECOMMENDATIONS.items():
        assert resolve_kernel_impl("auto", workload) == impl
        env = Environment(seed=1, kernel_impl="auto", workload=workload)
        assert env.kernel_impl == impl
    # Unknown or absent shape: the default back end, never an error.
    assert resolve_kernel_impl("auto") == DEFAULT_KERNEL_IMPL
    assert resolve_kernel_impl("auto", "no_such_shape") == DEFAULT_KERNEL_IMPL
    assert Environment(kernel_impl="auto").kernel_impl == DEFAULT_KERNEL_IMPL
    # Explicit impls are untouched by the hint.
    assert resolve_kernel_impl("heap", "standing_timers") == "heap"
    with pytest.raises(ValueError):
        resolve_kernel_impl("bogus")
