"""Property-based tests of kernel invariants."""

from hypothesis import given, settings, strategies as st

from repro.sim import Environment


@given(st.lists(st.floats(min_value=0, max_value=1e4), min_size=1, max_size=40))
@settings(max_examples=50, deadline=None)
def test_completion_times_match_delays(delays):
    """Each process finishes exactly at its own delay; clock ends at max."""
    env = Environment()
    completions = {}

    def proc(i, d):
        yield env.timeout(d)
        completions[i] = env.now

    for i, d in enumerate(delays):
        env.process(proc(i, d))
    env.run()
    for i, d in enumerate(delays):
        assert completions[i] == d
    assert env.now == max(delays)


@given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_clock_is_monotonic(delays):
    env = Environment()
    observed = []

    def proc(d):
        yield env.timeout(d)
        observed.append(env.now)
        yield env.timeout(d)
        observed.append(env.now)

    for d in delays:
        env.process(proc(d))
    env.run()
    assert observed == sorted(observed)


@given(
    st.integers(min_value=1, max_value=4),
    st.lists(st.floats(min_value=0.1, max_value=50), min_size=1, max_size=15),
)
@settings(max_examples=50, deadline=None)
def test_resource_throughput_bounded_by_capacity(capacity, services):
    """Total elapsed >= total work / capacity (no magic parallelism)."""
    from repro.sim import Resource

    env = Environment()
    res = Resource(env, capacity=capacity)

    def user(s):
        yield from res.use(s)

    for s in services:
        env.process(user(s))
    env.run()
    assert env.now >= sum(services) / capacity - 1e-9
    assert env.now >= max(services) - 1e-9


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=30, deadline=None)
def test_environment_seed_reproducibility(seed):
    def draws(env):
        return [env.rng.stream("s").random() for _ in range(3)]

    assert draws(Environment(seed)) == draws(Environment(seed))
