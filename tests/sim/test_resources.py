"""Resource contention, CPU scaling, disk cost model."""

import pytest

from repro.sim import CPU, Disk, Environment, Resource


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_single_capacity_serialises_users():
    env = Environment()
    res = Resource(env, capacity=1)
    finish = []

    def user(tag):
        yield from res.use(10)
        finish.append((tag, env.now))

    env.process(user("a"))
    env.process(user("b"))
    env.run()
    assert finish == [("a", 10.0), ("b", 20.0)]


def test_capacity_two_allows_parallelism():
    env = Environment()
    res = Resource(env, capacity=2)
    finish = []

    def user(tag):
        yield from res.use(10)
        finish.append((tag, env.now))

    for tag in ("a", "b", "c"):
        env.process(user(tag))
    env.run()
    assert finish == [("a", 10.0), ("b", 10.0), ("c", 20.0)]


def test_fifo_ordering_of_waiters():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(tag, delay):
        yield env.timeout(delay)
        yield from res.use(5)
        order.append(tag)

    env.process(user("first", 0))
    env.process(user("second", 1))
    env.process(user("third", 2))
    env.run()
    assert order == ["first", "second", "third"]


def test_release_without_hold_rejected():
    env = Environment()
    res = Resource(env, capacity=1)
    req = res.request()
    env.run()
    req.release()
    with pytest.raises(RuntimeError):
        req.release()


def test_resource_released_on_exception():
    env = Environment()
    res = Resource(env, capacity=1)

    def bad_user():
        req = res.request()
        yield req
        try:
            yield env.timeout(5)
            raise RuntimeError("fails while holding")
        finally:
            req.release()

    def good_user():
        yield env.timeout(1)
        yield from res.use(5)
        return env.now

    env.process(bad_user())
    p = env.process(good_user())
    with pytest.raises(RuntimeError, match="fails while holding"):
        env.run()
    # Continue the run; the good user should still get the resource.
    assert env.run(until=p) == 10.0


def test_cpu_speed_factor_scales_cost():
    env = Environment()
    fast = CPU(env, speed_factor=2.0)
    slow = CPU(env, speed_factor=0.5)
    times = {}

    def work(cpu, tag):
        yield from cpu.compute(10)
        times[tag] = env.now

    env.process(work(fast, "fast"))
    env.process(work(slow, "slow"))
    env.run()
    assert times["fast"] == 5.0
    assert times["slow"] == 20.0


def test_cpu_rejects_bad_speed():
    env = Environment()
    with pytest.raises(ValueError):
        CPU(env, speed_factor=0)


def test_disk_read_charges_access_plus_transfer():
    env = Environment()
    disk = Disk(env, access_ms=30, per_kb_ms=2)

    def reader():
        yield from disk.read(2048)
        return env.now

    p = env.process(reader())
    assert env.run(until=p) == 34.0  # 30 + 2 KB * 2 ms/KB


def test_disk_serialises_concurrent_reads():
    env = Environment()
    disk = Disk(env, access_ms=10, per_kb_ms=0)
    finish = []

    def reader(tag):
        yield from disk.read(0)
        finish.append((tag, env.now))

    env.process(reader(1))
    env.process(reader(2))
    env.run()
    assert finish == [(1, 10.0), (2, 20.0)]


def test_negative_sizes_rejected():
    env = Environment()
    disk = Disk(env)
    with pytest.raises(ValueError):
        list(disk.read(-1))
    res = Resource(env)
    with pytest.raises(ValueError):
        list(res.use(-1))
