"""Process semantics: composition, interrupts, error surfacing."""

import pytest

from repro.sim import Environment, Interrupt


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_process_return_value():
    env = Environment()

    def proc():
        yield env.timeout(1)
        return {"answer": 42}

    p = env.process(proc())
    assert env.run(until=p) == {"answer": 42}


def test_process_is_alive_until_done():
    env = Environment()

    def proc():
        yield env.timeout(10)

    p = env.process(proc())
    env.run(until=5)
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_yielding_non_event_is_an_error():
    env = Environment()

    def proc():
        yield 42  # type: ignore[misc]

    env.process(proc())
    with pytest.raises(RuntimeError, match="may only yield Event"):
        env.run()


def test_interrupt_wakes_sleeping_process():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100)
            log.append("slept-full")
        except Interrupt as intr:
            log.append(("interrupted", env.now, intr.cause))

    def interrupter(target):
        yield env.timeout(3)
        target.interrupt("server crashed")

    target = env.process(sleeper())
    env.process(interrupter(target))
    env.run()
    assert log == [("interrupted", 3.0, "server crashed")]


def test_interrupted_process_can_continue():
    env = Environment()

    def sleeper():
        try:
            yield env.timeout(100)
        except Interrupt:
            yield env.timeout(5)  # retry path
            return "recovered"
        return "no-interrupt"

    def interrupter(target):
        yield env.timeout(2)
        target.interrupt()

    p = env.process(sleeper())
    env.process(interrupter(p))
    assert env.run(until=p) == "recovered"
    assert env.now == 7.0


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_stale_timeout_does_not_resume_interrupted_process():
    env = Environment()
    resumptions = []

    def sleeper():
        try:
            yield env.timeout(10)
            resumptions.append("timeout")
        except Interrupt:
            resumptions.append("interrupt")
            yield env.timeout(50)
            resumptions.append("after")

    def interrupter(target):
        yield env.timeout(1)
        target.interrupt()

    p = env.process(sleeper())
    env.process(interrupter(p))
    env.run()
    # The original timeout at t=10 must not re-enter the process.
    assert resumptions == ["interrupt", "after"]


def test_exception_inside_process_propagates_to_waiter():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise LookupError("no such name")

    def waiter():
        try:
            yield env.process(bad())
        except LookupError:
            return "caught"
        return "missed"

    p = env.process(waiter())
    assert env.run(until=p) == "caught"


def test_many_concurrent_processes():
    env = Environment()
    done = []

    def proc(i):
        yield env.timeout(i % 7)
        done.append(i)

    for i in range(200):
        env.process(proc(i))
    env.run()
    assert sorted(done) == list(range(200))
