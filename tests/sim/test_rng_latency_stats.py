"""RNG determinism, latency models, stats primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import (
    ConstantLatency,
    EmpiricalLatency,
    Environment,
    ExponentialLatency,
    UniformLatency,
)
from repro.sim.rng import RngRegistry
from repro.sim.stats import Counter, Histogram, Timer


# ----------------------------------------------------------------------
# RNG
# ----------------------------------------------------------------------
def test_same_seed_same_streams():
    a, b = RngRegistry(7), RngRegistry(7)
    assert [a.stream("net").random() for _ in range(5)] == [
        b.stream("net").random() for _ in range(5)
    ]


def test_different_names_are_independent():
    reg = RngRegistry(7)
    net = [reg.stream("net").random() for _ in range(5)]
    disk = [reg.stream("disk").random() for _ in range(5)]
    assert net != disk


def test_new_stream_does_not_perturb_existing():
    a, b = RngRegistry(7), RngRegistry(7)
    a.stream("net").random()  # draw once
    b.stream("other")  # create an unrelated stream first
    b.stream("net").random()
    assert a.stream("net").random() == b.stream("net").random()


def test_fork_is_deterministic_and_distinct():
    reg = RngRegistry(3)
    f1, f2 = reg.fork("child"), reg.fork("child")
    assert f1.seed == f2.seed
    assert f1.seed != reg.seed
    assert reg.fork("other").seed != f1.seed


# ----------------------------------------------------------------------
# Latency models
# ----------------------------------------------------------------------
def test_constant_latency():
    model = ConstantLatency(10, per_byte_ms=0.01)
    rng = RngRegistry(0).stream("x")
    assert model.sample(rng, 100) == pytest.approx(11.0)
    assert model.mean(100) == pytest.approx(11.0)


def test_constant_latency_validation():
    with pytest.raises(ValueError):
        ConstantLatency(-1)


def test_uniform_latency_bounds_and_mean():
    model = UniformLatency(5, 15)
    rng = RngRegistry(1).stream("x")
    samples = [model.sample(rng) for _ in range(200)]
    assert all(5 <= s <= 15 for s in samples)
    assert model.mean() == pytest.approx(10.0)


def test_uniform_latency_validation():
    with pytest.raises(ValueError):
        UniformLatency(10, 5)


def test_exponential_latency_floor():
    model = ExponentialLatency(floor_ms=20, mean_extra_ms=5)
    rng = RngRegistry(2).stream("x")
    samples = [model.sample(rng) for _ in range(500)]
    assert all(s >= 20 for s in samples)
    assert model.mean() == pytest.approx(25.0)
    mean = sum(samples) / len(samples)
    assert 23 < mean < 27


def test_empirical_latency_matches_support():
    model = EmpiricalLatency([(10, 1), (20, 3)])
    rng = RngRegistry(3).stream("x")
    samples = [model.sample(rng) for _ in range(1000)]
    assert set(samples) <= {10.0, 20.0}
    assert model.mean() == pytest.approx(17.5)
    # weight 3:1 toward 20
    assert samples.count(20.0) > samples.count(10.0)


def test_empirical_latency_validation():
    with pytest.raises(ValueError):
        EmpiricalLatency([])
    with pytest.raises(ValueError):
        EmpiricalLatency([(10, 0)])


# ----------------------------------------------------------------------
# Stats
# ----------------------------------------------------------------------
def test_counter_monotonic():
    c = Counter("calls")
    c.increment()
    c.increment(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.increment(-1)


def test_timer_summary():
    t = Timer("latency")
    for v in (10, 20, 30, 40):
        t.record(v)
    assert t.count == 4
    assert t.mean == pytest.approx(25)
    assert t.minimum == 10
    assert t.maximum == 40
    assert t.percentile(50) == pytest.approx(25)
    assert t.percentile(0) == 10
    assert t.percentile(100) == 40
    assert t.stdev > 0


def test_timer_empty_raises():
    t = Timer("empty")
    with pytest.raises(ValueError):
        t.mean
    with pytest.raises(ValueError):
        t.percentile(50)
    with pytest.raises(ValueError):
        t.record(-1)


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
def test_timer_percentile_within_range(samples):
    t = Timer("prop")
    for s in samples:
        t.record(s)
    for p in (0, 25, 50, 75, 100):
        value = t.percentile(p)
        assert min(samples) <= value <= max(samples)


def test_histogram_buckets():
    h = Histogram("lat", [10, 20, 30])
    for v in (5, 10, 15, 25, 100):
        h.record(v)
    assert h.total == 5
    labels_counts = dict(h.buckets())
    assert labels_counts["<= 10"] == 2
    assert labels_counts["<= 20"] == 1
    assert labels_counts["<= 30"] == 1
    assert labels_counts["> 30"] == 1


def test_histogram_validation():
    with pytest.raises(ValueError):
        Histogram("bad", [])
    with pytest.raises(ValueError):
        Histogram("bad", [10, 5])


def test_stats_registry_scoped_to_environment():
    env1, env2 = Environment(), Environment()
    env1.stats.counter("x").increment()
    assert env2.stats.counter("x").value == 0
    assert env1.stats.counters() == {"x": 1}


def test_tracer_disabled_by_default():
    env = Environment()
    env.trace.emit("cat", "hidden")
    assert env.trace.records == []
    env.trace.enabled = True
    env.trace.emit("cat", "shown", key=1)
    assert len(env.trace.records) == 1
    rec = env.trace.records[0]
    assert rec.category == "cat" and rec.data == {"key": 1}
    assert "cat" in str(rec)
    assert env.trace.filter("cat") == [rec]
    assert env.trace.filter("other") == []
    env.trace.clear()
    assert env.trace.records == []
