"""Property-based tests of system-level invariants the paper relies on."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bind import (
    BindResolver,
    BindServer,
    ResourceRecord,
    Zone,
)
from repro.core import HNSName
from repro.net import DatagramTransport, Internetwork
from repro.serial.generated import MarshalCost
from repro.sim import ConstantLatency, Environment


def run(env, gen):
    return env.run(until=env.process(gen))


hostnames = st.lists(
    st.from_regex(r"[a-z][a-z0-9]{0,8}", fullmatch=True),
    min_size=1,
    max_size=12,
    unique=True,
)


# ----------------------------------------------------------------------
# AXFR completeness: a zone transfer returns exactly the zone's records.
# ----------------------------------------------------------------------
@given(hostnames)
@settings(max_examples=25, deadline=None)
def test_zone_transfer_is_complete_and_exact(names):
    env = Environment(seed=3)
    net = Internetwork(env)
    seg = net.add_segment(latency=ConstantLatency(1.0))
    client = net.add_host("client", seg)
    server_host = net.add_host("server", seg)
    zone = Zone("z")
    for i, name in enumerate(names):
        zone.add(ResourceRecord.a_record(f"{name}.z", f"10.0.0.{i + 1}"))
    server = BindServer(server_host, zones=[zone])
    ep = server.listen()
    resolver = BindResolver(client, DatagramTransport(net), ep)
    serial, records = run(env, resolver.zone_transfer("z"))
    assert serial == zone.serial
    assert sorted(str(r.name) for r in records) == sorted(
        f"{n}.z" for n in names
    )
    assert {r.data for r in records} == {r.data for r in zone.all_records()}


# ----------------------------------------------------------------------
# Preload guarantee: every transferred name then hits the cache.
# ----------------------------------------------------------------------
@given(hostnames)
@settings(max_examples=15, deadline=None)
def test_preload_guarantees_hits_for_all_names(names):
    from repro.bind import ResolverCache

    env = Environment(seed=4)
    net = Internetwork(env)
    seg = net.add_segment(latency=ConstantLatency(1.0))
    client = net.add_host("client", seg)
    server_host = net.add_host("server", seg)
    zone = Zone("z")
    for i, name in enumerate(names):
        zone.add(ResourceRecord.a_record(f"{name}.z", f"10.0.0.{i + 1}"))
    server = BindServer(server_host, zones=[zone])
    ep = server.listen()
    cache = ResolverCache(env)
    resolver = BindResolver(client, DatagramTransport(net), ep, cache=cache)
    run(env, resolver.preload_cache("z"))
    before = env.stats.counters().get("bind.resolver.remote_lookups", 0)
    for name in names:
        run(env, resolver.lookup(f"{name}.z"))
    after = env.stats.counters().get("bind.resolver.remote_lookups", 0)
    assert before == after  # not one remote call


# ----------------------------------------------------------------------
# Conflict freedom: combining systems can never collide names.
# ----------------------------------------------------------------------
@given(
    st.from_regex(r"[A-Za-z0-9][A-Za-z0-9-]{0,15}", fullmatch=True),
    st.from_regex(r"[A-Za-z0-9][A-Za-z0-9-]{0,15}", fullmatch=True),
    st.text(min_size=1, max_size=30).filter(lambda s: "::" not in s),
)
@settings(max_examples=50, deadline=None)
def test_name_conflict_freedom_across_contexts(ctx_a, ctx_b, local_name):
    """The same local name in two different contexts yields two distinct
    HNS names — 'no naming conflicts can ever be created in the HNS name
    space when combining previously separate systems'."""
    a = HNSName(ctx_a, local_name)
    b = HNSName(ctx_b, local_name)
    if ctx_a.lower() == ctx_b.lower() and ctx_a != ctx_b:
        return  # contexts are case-preserved identifiers; skip near-dups
    assert (a == b) == (ctx_a == ctx_b)
    # And the display form parses back unambiguously.
    assert HNSName.parse(str(a)) == a
    assert HNSName.parse(str(b)) == b


# ----------------------------------------------------------------------
# FindNSM determinism.
# ----------------------------------------------------------------------
def test_findnsm_is_deterministic_and_idempotent():
    from repro.workloads import build_testbed

    name = HNSName("BIND-cs", "fiji.cs.washington.edu")

    def binding_endpoint(seed):
        testbed = build_testbed(seed=seed)
        hns = testbed.make_hns(testbed.client)
        first = run(testbed.env, hns.find_nsm(name, "HRPCBinding"))
        second = run(testbed.env, hns.find_nsm(name, "HRPCBinding"))
        assert first == second  # warm result identical to cold
        return str(first.endpoint), first.program

    assert binding_endpoint(1) == binding_endpoint(1)


# ----------------------------------------------------------------------
# MarshalCost arithmetic.
# ----------------------------------------------------------------------
@given(
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=0, max_value=100_000),
)
@settings(max_examples=50, deadline=None)
def test_marshal_cost_merge_is_additive(pc, ic, al, by):
    from repro.serial.generated import OpCosts

    a = MarshalCost(pc, ic, al, by)
    b = MarshalCost(ic, al, by % 1000, pc)
    merged = a.merge(b)
    assert merged.proc_calls == a.proc_calls + b.proc_calls
    assert merged.indirect_calls == a.indirect_calls + b.indirect_calls
    assert merged.allocations == a.allocations + b.allocations
    assert merged.bytes_processed == a.bytes_processed + b.bytes_processed
    # With no fixed entry overhead, merged time is exactly the sum.
    flat = OpCosts(entry_overhead_ms=0.0)
    assert merged.time_ms(flat) == pytest.approx(
        a.time_ms(flat) + b.time_ms(flat), rel=1e-9
    )


# ----------------------------------------------------------------------
# Simulated time never runs backwards through the full import stack.
# ----------------------------------------------------------------------
def test_clock_monotonic_through_full_import():
    from repro.core import Arrangement
    from repro.workloads import build_stack, build_testbed

    testbed = build_testbed(seed=9)
    env = testbed.env
    stack = build_stack(testbed, Arrangement.ALL_REMOTE)
    stamps = []

    def watcher():
        for _ in range(200):
            stamps.append(env.now)
            yield env.timeout(5)

    env.process(watcher())
    run(
        env,
        stack.importer.import_binding(
            "DesiredService", HNSName("BIND-cs", "fiji.cs.washington.edu")
        ),
    )
    env.run(until=1100)
    assert stamps == sorted(stamps)
