"""Soak tests: the federation under churn, loss, and sustained load."""


from repro.bind import ResourceRecord, RRType
from repro.core import Arrangement, HNSName
from repro.workloads import build_stack, build_testbed

FIJI = HNSName("BIND-cs", "fiji.cs.washington.edu")


def run(env, gen):
    return env.run(until=env.process(gen))


def test_sustained_workload_with_native_churn():
    """Hours of simulated operation: hosts move every few minutes via
    the native interface; clients keep importing.  Invariant: every
    answer the client acts on is either current truth or within one TTL
    of it, and the system never wedges."""
    testbed = build_testbed(seed=130)
    env = testbed.env
    stack = build_stack(testbed, Arrangement.ALL_LOCAL)
    zone = testbed.public_server.zones[0]
    ttl = 30_000.0  # 30 simulated seconds

    # Pre-create the hosts fiji will "move" to, each with the service
    # infrastructure a real relocation would bring along.
    from repro.hrpc import HrpcServer, Portmapper

    def make_home(i):
        host = testbed.internet.add_host(f"fiji-home{i}", system_type="sun")
        pm = Portmapper(host, calibration=testbed.calibration)
        pm.listen()
        pm.register_local("DesiredService", 9999)
        server = HrpcServer(host)

        def ping(ctx, *args):
            yield from ctx.host.cpu.compute(0.1)
            return ("pong",) + args

        server.program("DesiredService").procedure("ping", ping)
        server.listen(9999)
        return host

    homes = [make_home(i) for i in range(8)]

    # fiji's address history: (valid_from, address)
    history = [(0.0, str(testbed.fiji.address))]

    def churn():
        for epoch in range(8):
            yield env.timeout(120_000)  # every 2 simulated minutes
            new_address = str(homes[epoch].address)
            zone.replace(
                "fiji.cs.washington.edu",
                RRType.A,
                [
                    ResourceRecord.a_record(
                        "fiji.cs.washington.edu", new_address, ttl=ttl
                    )
                ],
            )
            history.append((env.now, new_address))

    observations = []

    def client_loop():
        for _ in range(60):
            binding = yield from stack.importer.import_binding(
                "DesiredService", FIJI
            )
            observations.append((env.now, str(binding.endpoint.address)))
            # NSM caches the binding; flush so churn is observable, but
            # keep the HNS meta cache (meta data does not churn here).
            stack.flush_nsm_caches()
            yield env.timeout(15_000)

    env.process(churn())
    run(env, client_loop())
    assert len(observations) == 60

    def truth_at(t):
        current = history[0][1]
        for valid_from, address in history:
            if valid_from <= t:
                current = address
        return current

    for when, observed in observations:
        acceptable = {truth_at(when), truth_at(max(0.0, when - ttl))}
        assert observed in acceptable, (when, observed, acceptable)
    # Churn actually happened and was observed.
    assert len({addr for _, addr in observations}) >= 4


def test_workload_survives_packet_loss():
    """10% datagram loss: retransmission keeps the system correct, just
    slower; statistics show the retries happened."""

    testbed = build_testbed(seed=131)
    env = testbed.env
    # Inject loss into the single segment.
    testbed.internet.segments[0].drop_probability = 0.10
    stack = build_stack(testbed, Arrangement.ALL_LOCAL)

    def client_loop():
        results = []
        for _ in range(25):
            binding = yield from stack.importer.import_binding(
                "DesiredService", FIJI
            )
            results.append(binding.endpoint.port)
        return results

    results = run(env, client_loop())
    assert results == [9999] * 25
    assert env.stats.counters().get("net.udp.retransmits", 0) > 0


def test_many_clients_share_remote_hns_without_deadlock():
    """24 clients pounding one remote HNS + remote NSM: all complete,
    and the shared caches mean the aggregate remote traffic is far less
    than 24 cold paths."""
    from repro.core.import_call import HrpcImporter, RemoteFinder
    from repro.core.nsm import NsmStub
    from repro.hrpc import HRPCBinding, HrpcRuntime
    from repro.net.addresses import Endpoint
    from repro.workloads.scenarios import HNS_PORT

    testbed = build_testbed(seed=132)
    env = testbed.env
    stack = build_stack(testbed, Arrangement.ALL_REMOTE)  # brings up servers
    hns_binding = HRPCBinding(
        Endpoint(testbed.hns_host.address, HNS_PORT), "hns", suite="sunrpc"
    )
    done = []

    def one_client(i):
        # Stagger arrivals so the cold path is not retransmitted into
        # duplicate executions while the first client warms the cache.
        yield env.timeout(i * 1_000)
        host = testbed.internet.add_host(f"soak{i}")
        runtime = HrpcRuntime(host, testbed.internet)
        importer = HrpcImporter.direct(
            host,
            RemoteFinder(runtime, hns_binding),
            NsmStub(host, runtime),
            calibration=testbed.calibration,
        )
        binding = yield from importer.import_binding("DesiredService", FIJI)
        done.append((i, env.now, str(binding.endpoint)))

    for i in range(24):
        env.process(one_client(i))
    env.run()
    assert len(done) == 24
    assert len({endpoint for _, _, endpoint in done}) == 1
    # The shared HNS cache turned most meta traffic into hits.
    meta_lookups = env.stats.counters().get(
        f"bind.meta@{testbed.hns_host.name}.remote_lookups", 0
    )
    assert meta_lookups <= 10  # one cold path (~6) plus noise, not 24x6


def test_long_idle_period_then_activity():
    """TTL expiry over a long idle gap: the first query after the gap
    re-fetches, later ones hit again."""
    testbed = build_testbed(seed=133)
    env = testbed.env
    stack = build_stack(testbed, Arrangement.ALL_LOCAL)
    run(env, stack.importer.import_binding("DesiredService", FIJI))
    # Sleep past the meta TTL (1 hour).
    env.run(until=env.now + 2 * 3_600_000)
    start = env.now
    run(env, stack.importer.import_binding("DesiredService", FIJI))
    cold_again = env.now - start
    start = env.now
    run(env, stack.importer.import_binding("DesiredService", FIJI))
    warm = env.now - start
    # Everything expired over the gap: the full 460-vs-104 gap reopens.
    assert cold_again > 4 * warm
