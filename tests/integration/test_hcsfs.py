"""The heterogeneous file system over the HNS."""

import pytest

from repro.core import HNSName, NsmStub
from repro.hcsfs import FILE_PROGRAM, FileServer, FileServerError, HcsFileSystem
from repro.hrpc import HrpcRuntime
from repro.workloads import build_testbed

SRC_VOLUME = HNSName("BIND-cs", "src.projects.cs.washington.edu")
DOCS_VOLUME = HNSName("CH-hcs", "docs:hcs:uw")


def run(env, gen):
    return env.run(until=env.process(gen))


@pytest.fixture
def fs_world():
    """Testbed + file servers on fiji (UNIX) and dlion (Xerox) + client."""
    testbed = build_testbed(seed=66)

    # fiji exports /projects/src; its portmapper already maps hcsfile to
    # 9999, where build_testbed bound a toy program — move the real file
    # server in at a fresh port and re-register.
    fiji_fs = FileServer(testbed.fiji, volumes=["/projects/src"], port=9600)
    testbed.fiji.service_at(111).register_local(FILE_PROGRAM, 9600)
    fiji_fs.put_direct("/projects/src", "hns/findnsm.c", b"/* six mappings */")

    # dlion exports /docs via Courier.
    dlion_fs = FileServer(testbed.dlion, volumes=["/docs"], port=9601)
    testbed.dlion.service_at(5002).advertise_local(FILE_PROGRAM, 9601)
    dlion_fs.put_direct("/docs", "sosp87.ms", b".TL\nA Name Service...\n")

    hns = testbed.make_hns(testbed.client)
    stub = NsmStub(testbed.client)
    for nsm in (
        testbed.make_bind_file_nsm(testbed.client),
        testbed.make_ch_file_nsm(testbed.client),
    ):
        hns.link_local_nsm(nsm)
        stub.link_local(nsm)
    runtime = HrpcRuntime(testbed.client, testbed.internet)
    fs = HcsFileSystem(testbed.client, hns, stub, runtime)
    return testbed, fs, fiji_fs, dlion_fs


def test_fetch_from_unix_volume(fs_world):
    testbed, fs, fiji_fs, dlion_fs = fs_world
    data = run(testbed.env, fs.fetch(SRC_VOLUME, "hns/findnsm.c"))
    assert data == b"/* six mappings */"


def test_fetch_from_xerox_volume(fs_world):
    testbed, fs, fiji_fs, dlion_fs = fs_world
    data = run(testbed.env, fs.fetch(DOCS_VOLUME, "sosp87.ms"))
    assert data.startswith(b".TL")


def test_store_and_listdir(fs_world):
    testbed, fs, fiji_fs, dlion_fs = fs_world
    env = testbed.env
    stored = run(env, fs.store(SRC_VOLUME, "hns/cache.c", b"/* ttl */"))
    assert stored == 9
    names = run(env, fs.listdir(SRC_VOLUME, prefix="hns/"))
    assert names == ["hns/cache.c", "hns/findnsm.c"]
    assert fiji_fs.files_in("/projects/src")["hns/cache.c"] == b"/* ttl */"


def test_cross_system_copy(fs_world):
    """Fetch from the Xerox file system, store into the UNIX one."""
    testbed, fs, fiji_fs, dlion_fs = fs_world
    stored = run(
        testbed.env,
        fs.copy(DOCS_VOLUME, "sosp87.ms", SRC_VOLUME, "papers/sosp87.ms"),
    )
    assert stored > 0
    assert (
        fiji_fs.files_in("/projects/src")["papers/sosp87.ms"]
        == dlion_fs.files_in("/docs")["sosp87.ms"]
    )


def test_remove(fs_world):
    testbed, fs, fiji_fs, dlion_fs = fs_world
    env = testbed.env
    run(env, fs.store(SRC_VOLUME, "tmp.o", b"x"))
    run(env, fs.remove(SRC_VOLUME, "tmp.o"))
    assert "tmp.o" not in fiji_fs.files_in("/projects/src")

    def scenario():
        with pytest.raises(FileServerError):
            yield from fs.fetch(SRC_VOLUME, "tmp.o")
        return "done"

    assert run(env, scenario()) == "done"


def test_binding_cache_avoids_repeat_resolution(fs_world):
    testbed, fs, fiji_fs, dlion_fs = fs_world
    env = testbed.env
    run(env, fs.fetch(SRC_VOLUME, "hns/findnsm.c"))
    before = env.stats.counters().get("hns.find_nsm", 0)
    run(env, fs.fetch(SRC_VOLUME, "hns/findnsm.c"))
    after = env.stats.counters().get("hns.find_nsm", 0)
    assert after == before  # served from the volume-binding cache
    fs.invalidate(SRC_VOLUME)
    run(env, fs.fetch(SRC_VOLUME, "hns/findnsm.c"))
    assert env.stats.counters()["hns.find_nsm"] == after + 1


def test_unknown_volume_surfaces(fs_world):
    testbed, fs, fiji_fs, dlion_fs = fs_world
    from repro.bind import NameNotFound

    def scenario():
        with pytest.raises(NameNotFound):
            yield from fs.fetch(
                HNSName("BIND-cs", "nothing.cs.washington.edu"), "x"
            )
        return "done"

    assert run(testbed.env, scenario()) == "done"


def test_fileserver_validation(fs_world):
    testbed, fs, fiji_fs, dlion_fs = fs_world
    with pytest.raises(ValueError):
        fiji_fs.create_volume("")
    with pytest.raises(FileServerError):
        fiji_fs.files_in("/nope")
    fiji_fs.create_volume("/extra")
    assert fiji_fs.files_in("/extra") == {}


def test_large_files_cost_more(fs_world):
    testbed, fs, fiji_fs, dlion_fs = fs_world
    env = testbed.env
    fiji_fs.put_direct("/projects/src", "small", b"x" * 100)
    fiji_fs.put_direct("/projects/src", "large", b"x" * 100_000)
    run(env, fs.fetch(SRC_VOLUME, "small"))  # warm binding cache
    start = env.now
    run(env, fs.fetch(SRC_VOLUME, "small"))
    small_ms = env.now - start
    start = env.now
    run(env, fs.fetch(SRC_VOLUME, "large"))
    large_ms = env.now - start
    assert large_ms > 2 * small_ms
