"""The federation across multiple Ethernet segments (gateways)."""

import pytest

from repro.bind import BindResolver, BindServer, ResourceRecord, Zone
from repro.core import HNSName
from repro.core.hns import HNS
from repro.core.metastore import MetaStore
from repro.core.admin import HnsAdministrator
from repro.core.nsms import BindHostAddressNSM
from repro.harness.calibration import DEFAULT_CALIBRATION
from repro.net import DatagramTransport, Internetwork
from repro.sim import ConstantLatency, Environment

CAL = DEFAULT_CALIBRATION


def run(env, gen):
    return env.run(until=env.process(gen))


@pytest.fixture
def two_campus():
    """Two segments joined by a gateway: the meta server and one name
    service on segment A, another department's name service on B."""
    env = Environment(seed=110)
    net = Internetwork(env, gateway_hop_ms=8.0)
    seg_a = net.add_segment(latency=ConstantLatency(CAL.wire_base_ms, CAL.wire_per_byte_ms))
    seg_b = net.add_segment(latency=ConstantLatency(CAL.wire_base_ms, CAL.wire_per_byte_ms))
    udp = DatagramTransport(net)

    client = net.add_host("client", seg_a)
    meta_host = net.add_host("metans", seg_a)
    meta = BindServer(
        meta_host,
        zones=[Zone("hns")],
        lookup_cost_ms=CAL.meta_bind_lookup_ms,
        allow_dynamic_update=True,
    )
    meta_ep = meta.listen()

    ns_a_host = net.add_host("ns-a", seg_a)
    zone_a = Zone("a.edu")
    zone_a.add(ResourceRecord.a_record("host1.a.edu", "10.0.0.1"))
    ns_a = BindServer(ns_a_host, zones=[zone_a])
    ep_a = ns_a.listen()

    ns_b_host = net.add_host("ns-b", seg_b)
    zone_b = Zone("b.edu")
    zone_b.add(ResourceRecord.a_record("host9.b.edu", "10.0.1.9"))
    ns_b = BindServer(ns_b_host, zones=[zone_b])
    ep_b = ns_b.listen()

    admin = HnsAdministrator(
        MetaStore(meta_host, udp, meta_ep, calibration=CAL)
    )

    def register():
        yield from admin.register_name_service("NS-A", "bind", "ns-a", 53)
        yield from admin.register_name_service("NS-B", "bind", "ns-b", 53)
        yield from admin.register_context("CAMPUS-A", "NS-A")
        yield from admin.register_context("CAMPUS-B", "NS-B")
        for ns in ("NS-A", "NS-B"):
            yield from admin.register_nsm(
                nsm_name=f"HostAddress-{ns}",
                query_class="HostAddress",
                name_service=ns,
                host_name="host1.a.edu",
                host_context="CAMPUS-A",
                program=f"nsm.HostAddress-{ns}",
                suite="sunrpc",
                port=9400,
            )

    run(env, register())

    hns = HNS(MetaStore(client, udp, meta_ep, calibration=CAL), calibration=CAL)
    hns.link_host_address_nsm(
        "NS-A",
        BindHostAddressNSM(client, "NS-A", udp, ep_a, calibration=CAL),
    )
    hns.link_host_address_nsm(
        "NS-B",
        BindHostAddressNSM(client, "NS-B", udp, ep_b, calibration=CAL),
    )
    return env, net, client, hns, ep_a, ep_b, udp


def test_cross_segment_resolution(two_campus):
    env, net, client, hns, ep_a, ep_b, udp = two_campus
    nsm_b = hns._host_address_nsms["NS-B"]
    result = run(env, nsm_b.query(HNSName("CAMPUS-B", "host9.b.edu")))
    assert result.value["address"] == "10.0.1.9"


def test_cross_segment_lookup_pays_gateway_cost(two_campus):
    env, net, client, hns, ep_a, ep_b, udp = two_campus
    resolver_a = BindResolver(client, udp, ep_a, calibration=CAL)
    resolver_b = BindResolver(client, udp, ep_b, calibration=CAL)
    start = env.now
    run(env, resolver_a.lookup("host1.a.edu"))
    same_segment = env.now - start
    start = env.now
    run(env, resolver_b.lookup("host9.b.edu"))
    cross_segment = env.now - start
    # Two gateway hops (there and back) at 8 ms plus the far wire.
    assert cross_segment - same_segment == pytest.approx(2 * (8.0 + 1.0), abs=1.5)


def test_findnsm_works_across_segments(two_campus):
    env, net, client, hns, ep_a, ep_b, udp = two_campus
    binding = run(
        env, hns.find_nsm(HNSName("CAMPUS-B", "host9.b.edu"), "HostAddress")
    )
    assert binding.program == "nsm.HostAddress-NS-B"


def test_gateway_partition_isolates_remote_segment(two_campus):
    """Crashing every host on segment B: local naming keeps working."""
    env, net, client, hns, ep_a, ep_b, udp = two_campus
    for host in net.segments[1].hosts:
        host.crash()
    nsm_a = hns._host_address_nsms["NS-A"]
    result = run(env, nsm_a.query(HNSName("CAMPUS-A", "host1.a.edu")))
    assert result.value["address"] == "10.0.0.1"
    from repro.net import TransportTimeout

    nsm_b = hns._host_address_nsms["NS-B"]

    def scenario():
        with pytest.raises(TransportTimeout):
            yield from nsm_b.query(HNSName("CAMPUS-B", "host9.b.edu"))
        return "done"

    assert run(env, scenario()) == "done"
