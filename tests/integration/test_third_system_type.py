"""Integrating a third system type (Sun Yellow Pages) into the HNS.

The effort claimed by the paper — "adding a new system type simply
requires building NSMs for those queries to be supported and
registering their existence with the HNS" — measured here in full:
stand up ypserv, write three small NSMs (already in
``repro.core.nsms.yp``), register, and watch unmodified clients use it.
"""

import pytest

from repro.core import HNSName, HnsAdministrator, NsmStub, serve_nsm
from repro.core.nsms.yp import YpBindingNSM, YpHostAddressNSM, YpMailboxNSM
from repro.hrpc import HrpcRuntime, HrpcServer, Portmapper
from repro.workloads import build_testbed
from repro.yellowpages import NoSuchKey, NoSuchMap, YpClient, YpDomain, YpMap, YpServer


def run(env, gen):
    return env.run(until=env.process(gen))


# ----------------------------------------------------------------------
# The YP substrate itself
# ----------------------------------------------------------------------
def test_yp_map_mechanics():
    m = YpMap("hosts.byname")
    m.set("rainier", "128.95.2.1 rainier")
    assert m.match("rainier").startswith("128.95.2.1")
    assert m.order == 1
    assert m.keys() == ["rainier"]
    assert m.delete("rainier")
    assert not m.delete("rainier")
    with pytest.raises(NoSuchKey):
        m.match("rainier")
    with pytest.raises(ValueError):
        m.set("", "x")
    with pytest.raises(ValueError):
        YpMap("")


def test_yp_domain_mechanics():
    d = YpDomain("cs")
    d.map("hosts.byname").set("a", "1.2.3.4")
    assert d.map_names() == ["hosts.byname"]
    assert len(d) == 1
    with pytest.raises(NoSuchMap):
        d.existing_map("ghost")
    with pytest.raises(ValueError):
        YpDomain("")


@pytest.fixture
def yp_world():
    testbed = build_testbed(seed=44)
    yp_host = testbed.internet.add_host("ypmaster", system_type="sun")
    domain = YpDomain("cs-suns")
    hosts = domain.map("hosts.byname")
    hosts.set("rainier", f"{yp_host.address} rainier")
    domain.map("mail.aliases").set("bershad", "rainier|bershad")
    server = YpServer(yp_host, domains=[domain])
    endpoint = server.listen()
    # rainier runs a portmapper + a Sun RPC service, like any Sun host.
    pm = Portmapper(yp_host, calibration=testbed.calibration)
    pm.listen()
    pm.register_local("YpNamedService", 9800)
    rpc = HrpcServer(yp_host)

    def ping(ctx, *args):
        yield from ctx.host.cpu.compute(0.2)
        return ("yp-pong",) + args

    rpc.program("YpNamedService").procedure("ping", ping)
    rpc.listen(9800)
    return testbed, yp_host, domain, server, endpoint


def test_yp_client_match(yp_world):
    testbed, yp_host, domain, server, endpoint = yp_world
    client = YpClient(testbed.client, testbed.udp, endpoint, "cs-suns")
    value = run(testbed.env, client.match("hosts.byname", "rainier"))
    assert value.split()[0] == str(yp_host.address)
    assert run(testbed.env, client.map_names()) == ["hosts.byname", "mail.aliases"]


def test_yp_client_errors(yp_world):
    testbed, yp_host, domain, server, endpoint = yp_world
    client = YpClient(testbed.client, testbed.udp, endpoint, "cs-suns")
    bad_domain = YpClient(testbed.client, testbed.udp, endpoint, "nowhere")

    def scenario():
        with pytest.raises(NoSuchKey):
            yield from client.match("hosts.byname", "ghost")
        with pytest.raises(NoSuchMap):
            yield from client.match("ghost.map", "x")
        with pytest.raises(NoSuchMap):
            yield from bad_domain.match("hosts.byname", "rainier")
        return "done"

    assert run(testbed.env, scenario()) == "done"


def test_yp_server_validation(yp_world):
    testbed, yp_host, domain, server, endpoint = yp_world
    with pytest.raises(ValueError):
        server.add_domain(domain)
    with pytest.raises(ValueError):
        YpServer(yp_host, match_cost_ms=-1)


# ----------------------------------------------------------------------
# Full integration: YP joins the federation
# ----------------------------------------------------------------------
def integrate_yp(testbed, endpoint):
    admin = HnsAdministrator(testbed.make_metastore(testbed.meta_host))

    def register():
        yield from admin.register_name_service(
            "YP-cs-suns", "bind", "ypmaster.cs.washington.edu", endpoint.port
        )
        yield from admin.register_context("SUNS", "YP-cs-suns")
        for qc, offset in (
            ("HRPCBinding", 0),
            ("HostAddress", 1),
            ("MailboxLocation", 2),
        ):
            yield from admin.register_nsm(
                nsm_name=f"{qc}-YP-cs-suns",
                query_class=qc,
                name_service="YP-cs-suns",
                host_name="nsmhost.cs.washington.edu",
                host_context="BIND-srv",
                program=f"nsm.{qc}-YP-cs-suns",
                suite="sunrpc",
                port=9700 + offset,
            )

    run(testbed.env, register())


def test_unmodified_client_binds_through_yp(yp_world):
    testbed, yp_host, domain, server, endpoint = yp_world
    env = testbed.env
    integrate_yp(testbed, endpoint)

    # Deploy the binding NSM remotely (shared by everyone).
    nsm = YpBindingNSM(
        testbed.nsm_host, "YP-cs-suns", testbed.udp, endpoint, "cs-suns",
        calibration=testbed.calibration,
    )
    nsm_server = HrpcServer(testbed.nsm_host, name="yp-nsms")
    serve_nsm(nsm_server, nsm)
    nsm_server.listen(9700)

    hns = testbed.make_hns(testbed.client)
    runtime = HrpcRuntime(testbed.client, testbed.internet)
    stub = NsmStub(testbed.client, runtime)
    name = HNSName("SUNS", "rainier")

    from repro.hrpc import HRPCBinding

    def client():
        binding = yield from hns.find_nsm(name, "HRPCBinding")
        result = yield from stub.call(binding, name, service="YpNamedService")
        service_binding = result.value
        reply = yield from runtime.call(
            HRPCBinding(
                service_binding["endpoint"],
                service_binding["program"],
                suite=service_binding["suite"],
            ),
            "ping",
            "via-yp",
        )
        return reply

    assert run(env, client()) == ("yp-pong", "via-yp")


def test_yp_hostaddr_and_mail_nsms(yp_world):
    testbed, yp_host, domain, server, endpoint = yp_world
    env = testbed.env
    hostaddr = YpHostAddressNSM(
        testbed.client, "YP-cs-suns", testbed.udp, endpoint, "cs-suns",
        calibration=testbed.calibration,
    )
    result = run(env, hostaddr.query(HNSName("SUNS", "rainier")))
    assert result.value["address"] == str(yp_host.address)
    # Cached on repeat.
    result = run(env, hostaddr.query(HNSName("SUNS", "rainier")))
    assert result.from_cache

    mail = YpMailboxNSM(
        testbed.client, "YP-cs-suns", testbed.udp, endpoint, "cs-suns",
        calibration=testbed.calibration,
    )
    result = run(env, mail.query(HNSName("SUNS", "bershad")))
    assert result.value == {"mail_host": "rainier", "mailbox": "bershad"}


def test_native_yp_updates_visible_globally(yp_world):
    """ypserv's own map updates flow through with no reregistration."""
    testbed, yp_host, domain, server, endpoint = yp_world
    env = testbed.env
    hostaddr = YpHostAddressNSM(
        testbed.client, "YP-cs-suns", testbed.udp, endpoint, "cs-suns",
        calibration=testbed.calibration,
    )
    domain.map("hosts.byname").set("baker", "128.95.2.9 baker")
    result = run(env, hostaddr.query(HNSName("SUNS", "baker")))
    assert result.value["address"] == "128.95.2.9"


def test_binding_nsm_requires_service_param(yp_world):
    testbed, yp_host, domain, server, endpoint = yp_world
    nsm = YpBindingNSM(
        testbed.client, "YP-cs-suns", testbed.udp, endpoint, "cs-suns",
        calibration=testbed.calibration,
    )

    def scenario():
        with pytest.raises(ValueError):
            yield from nsm.query(HNSName("SUNS", "rainier"))
        return "done"

    assert run(testbed.env, scenario()) == "done"
