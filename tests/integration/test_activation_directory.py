"""Server activation and the federation directory."""

import pytest

from repro.core import HNSName
from repro.hrpc import HrpcServer, Portmapper, PortmapperClient
from repro.workloads import build_testbed
from repro.workloads.scenarios import BIND_NS, CH_NS


def run(env, gen):
    return env.run(until=env.process(gen))


# ----------------------------------------------------------------------
# Server activation (inetd-style) through the portmapper
# ----------------------------------------------------------------------
def make_sleepy_factory(created):
    def factory(host, port):
        server = HrpcServer(host, name=f"sleepy@{host.name}")

        def ping(ctx, *args):
            yield from ctx.host.cpu.compute(0.1)
            return ("awake",) + args

        server.program("SleepyService").procedure("ping", ping)
        server.listen(port)
        created.append(server)
        return server

    return factory


@pytest.fixture
def activation_world():
    testbed = build_testbed(seed=120)
    pm = testbed.fiji.service_at(111)
    created = []
    pm.register_activatable("SleepyService", 9900, make_sleepy_factory(created))
    return testbed, pm, created


def test_first_getport_activates(activation_world):
    testbed, pm, created = activation_world
    env = testbed.env
    assert not pm.is_running("SleepyService")
    pmc = PortmapperClient(testbed.client, testbed.udp, calibration=testbed.calibration)
    start = env.now
    port = run(env, pmc.get_port(testbed.fiji.address, "SleepyService"))
    first = env.now - start
    assert port == 9900
    assert pm.is_running("SleepyService")
    assert len(created) == 1
    # Second binding: no activation cost.
    start = env.now
    run(env, pmc.get_port(testbed.fiji.address, "SleepyService"))
    second = env.now - start
    assert first - second == pytest.approx(pm.activation_ms, rel=0.05)
    assert pm.activations == 1


def test_activated_service_is_callable(activation_world):
    testbed, pm, created = activation_world
    env = testbed.env
    from repro.hrpc import HRPCBinding, HrpcRuntime
    from repro.net.addresses import Endpoint

    pmc = PortmapperClient(testbed.client, testbed.udp, calibration=testbed.calibration)
    port = run(env, pmc.get_port(testbed.fiji.address, "SleepyService"))
    runtime = HrpcRuntime(testbed.client, testbed.internet)
    binding = HRPCBinding(
        Endpoint(testbed.fiji.address, port), "SleepyService", suite="sunrpc"
    )
    assert run(env, runtime.call(binding, "ping", 1)) == ("awake", 1)


def test_activation_through_full_import(activation_world):
    """The binding NSM drives activation transparently."""
    from repro.core import Arrangement
    from repro.workloads import build_stack

    testbed, pm, created = activation_world
    stack = build_stack(testbed, Arrangement.ALL_LOCAL)
    binding = run(
        testbed.env,
        stack.importer.import_binding(
            "SleepyService", HNSName("BIND-cs", "fiji.cs.washington.edu")
        ),
    )
    assert binding.endpoint.port == 9900
    assert pm.activations == 1


def test_activation_registration_validation(activation_world):
    testbed, pm, created = activation_world
    with pytest.raises(ValueError):
        pm.register_activatable("X", 0, make_sleepy_factory([]))
    with pytest.raises(ValueError):
        pm.register_activatable(
            "DesiredService", 9999, make_sleepy_factory([])
        )  # already running
    with pytest.raises(ValueError):
        Portmapper(testbed.june, activation_ms=-1)


# ----------------------------------------------------------------------
# Directory
# ----------------------------------------------------------------------
def test_directory_lists_whole_federation():
    testbed = build_testbed(seed=121)
    metastore = testbed.make_metastore(testbed.client)
    listing = run(testbed.env, metastore.directory())
    assert listing.serial == testbed.meta_server.zones[0].serial
    assert listing.contexts["bind-cs"] == BIND_NS
    assert listing.contexts["ch-hcs"] == CH_NS
    assert set(listing.name_services) == {"bind-cs", "ch-hcs"}
    assert listing.name_services["ch-hcs"].kind == "clearinghouse"
    # 4 query classes x 2 name services
    assert len(listing.query_mappings) == 8
    assert len(listing.nsms) == 8
    assert listing.query_mappings[("bind-cs", "hrpcbinding")] == (
        f"HRPCBinding-{BIND_NS}"
    )
    assert "nsmhost.cs.washington.edu" in listing.nsm_hosts
    rendered = listing.render()
    assert "contexts:" in rendered and "NSMs:" in rendered


def test_directory_reflects_new_registrations():
    from repro.core import HnsAdministrator

    testbed = build_testbed(seed=122)
    env = testbed.env
    admin = HnsAdministrator(testbed.make_metastore(testbed.meta_host))
    run(env, admin.register_context("NEWCTX", BIND_NS))
    metastore = testbed.make_metastore(testbed.client)
    listing = run(env, metastore.directory())
    assert listing.contexts["newctx"] == BIND_NS
