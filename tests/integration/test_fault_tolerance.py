"""The ResolutionPolicy degradation ladder, end to end.

Fresh cache hit -> retry with jittered backoff -> stale cache hit ->
fail fast (circuit breaker open): each rung is exercised against the
full testbed with real crashes, restarts, and wire loss.
"""

import dataclasses

import pytest

from repro.core import (
    Arrangement,
    ContextNotFound,
    HNSName,
    LocalNsmBinding,
    NsmUnavailable,
)
from repro.harness.calibration import DEFAULT_CALIBRATION
from repro.net import TransportTimeout
from repro.resolution import ResolutionPolicy
from repro.workloads import build_stack, build_testbed
from repro.workloads.scenarios import BIND_CONTEXT, BIND_NS

FIJI = HNSName("BIND-cs", "fiji.cs.washington.edu")


def run(env, gen):
    return env.run(until=env.process(gen))


def sleep(env, ms):
    def idle():
        yield env.timeout(ms)

    run(env, idle())


# ----------------------------------------------------------------------
# Retry with backoff
# ----------------------------------------------------------------------
def test_meta_lookup_retries_through_server_restart():
    """A meta lookup survives a server outage shorter than the retry span."""
    testbed = build_testbed(seed=11)
    env = testbed.env
    metastore = testbed.make_metastore(testbed.client)
    testbed.meta_host.crash()

    def medic():
        # Revive the meta server once the resolver has started retrying,
        # so the outage is mid-lookup by construction.
        while env.stats.counter("bind.meta@client.retries").value < 1:
            yield env.timeout(100.0)
        testbed.meta_host.restart()

    env.process(medic())
    assert run(env, metastore.context_to_name_service(BIND_CONTEXT)) == BIND_NS
    assert env.stats.counter("bind.meta@client.retries").value >= 1


def test_meta_retry_exhaustion_raises_last_transient_error():
    """A dead meta server still fails -- after exactly policy.attempts rounds."""
    testbed = build_testbed(seed=12)
    env = testbed.env
    metastore = testbed.make_metastore(testbed.client)
    testbed.meta_host.crash()

    def scenario():
        with pytest.raises(TransportTimeout):
            yield from metastore.context_to_name_service(BIND_CONTEXT)
        return "done"

    assert run(env, scenario()) == "done"
    assert metastore.policy is not None
    assert (
        env.stats.counter("bind.meta@client.retries").value
        == metastore.policy.attempts - 1
    )


def test_find_nsm_retries_host_resolution_through_crash():
    """The NSM-host crashing mid-FindNSM is retried at the HNS layer."""
    testbed = build_testbed(seed=18)
    env = testbed.env
    hns = testbed.make_hns(testbed.client)
    # The public BIND answers the native HostAddress lookup (mapping 6);
    # killing it fails FindNSM after the meta mappings have succeeded.
    testbed.public_host.crash()

    def medic():
        while env.stats.counter("hns.find_nsm.retries").value < 1:
            yield env.timeout(100.0)
        testbed.public_host.restart()

    env.process(medic())
    binding = run(env, hns.find_nsm(FIJI, "HRPCBinding"))
    assert binding.program == "nsm.HRPCBinding-BIND-cs"
    assert env.stats.counter("hns.find_nsm.retries").value >= 1


def test_wire_drop_imports_survive_with_policy():
    """Cold imports keep succeeding on a lossy wire under the default policy."""
    testbed = build_testbed(seed=13)
    env = testbed.env
    stack = build_stack(testbed, Arrangement.ALL_LOCAL)
    testbed.internet.segments[0].drop_probability = 0.5
    for _ in range(5):
        stack.flush_all_caches()
        binding = run(env, stack.importer.import_binding("DesiredService", FIJI))
        assert binding.endpoint.port == 9999


# ----------------------------------------------------------------------
# Negative caching
# ----------------------------------------------------------------------
def test_negative_caching_spares_repeated_misses():
    testbed = build_testbed(seed=15)
    env = testbed.env
    metastore = testbed.make_metastore(testbed.client)

    def scenario():
        for _ in range(3):
            with pytest.raises(ContextNotFound):
                yield from metastore.context_to_name_service("no-such-ctx")
        return "done"

    assert run(env, scenario()) == "done"
    # One remote NXDOMAIN; the repeats answer from the negative cache.
    assert env.stats.counter("bind.meta@client.remote_lookups").value == 1
    assert env.stats.counter("bind.meta@client.negative_hits").value == 2


# ----------------------------------------------------------------------
# Serve-stale
# ----------------------------------------------------------------------
def test_serve_stale_masks_meta_outage():
    calibration = dataclasses.replace(DEFAULT_CALIBRATION, meta_ttl_ms=5_000)
    testbed = build_testbed(seed=14, calibration=calibration)
    env = testbed.env
    metastore = testbed.make_metastore(testbed.client)
    assert run(env, metastore.context_to_name_service(BIND_CONTEXT)) == BIND_NS
    testbed.meta_host.crash()
    sleep(env, 6_000)  # past the TTL but within the stale window
    assert run(env, metastore.context_to_name_service(BIND_CONTEXT)) == BIND_NS
    assert env.stats.counter("bind.meta@client.stale_hits").value == 1


def test_no_stale_serving_without_policy():
    calibration = dataclasses.replace(DEFAULT_CALIBRATION, meta_ttl_ms=5_000)
    testbed = build_testbed(seed=14, calibration=calibration)
    env = testbed.env
    metastore = testbed.make_metastore(
        testbed.client, policy=ResolutionPolicy.disabled()
    )
    assert run(env, metastore.context_to_name_service(BIND_CONTEXT)) == BIND_NS
    testbed.meta_host.crash()
    sleep(env, 6_000)

    def scenario():
        with pytest.raises(TransportTimeout):
            yield from metastore.context_to_name_service(BIND_CONTEXT)
        return "done"

    assert run(env, scenario()) == "done"
    assert env.stats.counter("bind.meta@client.stale_hits").value == 0


def test_stale_window_expiry_ends_the_grace_period():
    calibration = dataclasses.replace(DEFAULT_CALIBRATION, meta_ttl_ms=5_000)
    testbed = build_testbed(seed=14, calibration=calibration)
    env = testbed.env
    metastore = testbed.make_metastore(testbed.client)
    assert run(env, metastore.context_to_name_service(BIND_CONTEXT)) == BIND_NS
    testbed.meta_host.crash()
    assert metastore.policy is not None
    sleep(env, 6_000 + metastore.policy.stale_window_ms)

    def scenario():
        with pytest.raises(TransportTimeout):
            yield from metastore.context_to_name_service(BIND_CONTEXT)
        return "done"

    assert run(env, scenario()) == "done"
    assert env.stats.counter("bind.meta@client.stale_hits").value == 0


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
def test_breaker_trips_fast_fails_then_recovers():
    testbed = build_testbed(seed=16)
    env = testbed.env
    stack = build_stack(testbed, Arrangement.REMOTE_NSMS)
    run(env, stack.importer.import_binding("DesiredService", FIJI))  # warm
    testbed.nsm_host.crash()
    stack.flush_nsm_caches()

    def failing():
        with pytest.raises(NsmUnavailable):
            yield from stack.importer.import_binding("DesiredService", FIJI)
        return "done"

    # The retries exhaust into the breaker tripping.
    assert run(env, failing()) == "done"
    nsm_name = stack.binding_nsm.name
    assert stack.hns.nsm_breakers.states()[nsm_name] == "open"

    # While open: fail fast, burning no transport timeouts even though
    # the NSM host is actually back up already.
    testbed.nsm_host.restart()
    start = env.now
    assert run(env, failing()) == "done"
    assert env.now - start < 100.0
    assert env.stats.counter("hns.breaker.fast_fails").value >= 1

    # After the reset window the breaker half-opens; the next import is
    # the probe, succeeds, and closes the circuit.
    assert stack.hns.policy is not None
    sleep(env, stack.hns.policy.breaker_reset_ms + 1)
    binding = run(env, stack.importer.import_binding("DesiredService", FIJI))
    assert binding.endpoint.port == 9999
    assert stack.hns.nsm_breakers.states()[nsm_name] == "closed"


def test_open_breaker_routes_to_linked_in_copy():
    """FindNSM routes around a dead NSM when a local copy is linked in."""
    testbed = build_testbed(seed=17)
    env = testbed.env
    hns = testbed.make_hns(testbed.client)
    local = testbed.make_bind_binding_nsm(testbed.client)
    hns.link_local_nsm(local)
    assert hns.policy is not None
    for _ in range(hns.policy.breaker_threshold):
        hns.report_nsm_outcome(local.name, ok=False)
    assert hns.nsm_breakers.states()[local.name] == "open"
    binding = run(env, hns.find_nsm(FIJI, "HRPCBinding"))
    assert isinstance(binding, LocalNsmBinding)
    assert binding.nsm is local
    assert env.stats.counter("hns.breaker.rerouted").value == 1
