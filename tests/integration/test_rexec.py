"""Remote computation over the HNS."""

import pytest

from repro.core import HNSName, NsmStub
from repro.core.import_call import HrpcImporter, LocalFinder
from repro.hrpc import HrpcRuntime
from repro.rexec import JOB_CATALOGUE, REXEC_PROGRAM, RexecError, RexecServer
from repro.rexec.client import RemoteExecutor
from repro.workloads import build_testbed

FIJI = HNSName("BIND-cs", "fiji.cs.washington.edu")
JUNE = HNSName("BIND-cs", "june.cs.washington.edu")
DLION = HNSName("CH-hcs", "dlion:hcs:uw")


def run(env, gen):
    return env.run(until=env.process(gen))


@pytest.fixture
def rexec_world():
    testbed = build_testbed(seed=88)
    workers = {}
    # Sun-side workers register with their portmappers.
    for host in (testbed.fiji, testbed.june):
        worker = RexecServer(host, calibration=testbed.calibration)
        pm = host.service_at(111)
        if pm is None:
            from repro.hrpc import Portmapper

            pm = Portmapper(host, calibration=testbed.calibration)
            pm.listen()
        pm.register_local(REXEC_PROGRAM, worker.endpoint.port)
        workers[host.name] = worker
    # Xerox-side worker advertises with the Courier binder.
    worker = RexecServer(testbed.dlion, calibration=testbed.calibration)
    testbed.dlion.service_at(5002).advertise_local(
        REXEC_PROGRAM, worker.endpoint.port
    )
    workers["dlion"] = worker

    hns = testbed.make_hns(testbed.client)
    stub = NsmStub(testbed.client)
    for nsm in (
        testbed.make_bind_binding_nsm(testbed.client),
        testbed.make_ch_binding_nsm(testbed.client),
    ):
        hns.link_local_nsm(nsm)
        stub.link_local(nsm)
    runtime = HrpcRuntime(testbed.client, testbed.internet)
    importer = HrpcImporter.direct(
        testbed.client,
        LocalFinder(hns),
        stub,
        calibration=testbed.calibration,
    )
    executor = RemoteExecutor(testbed.client, importer, runtime)
    return testbed, executor, workers


def test_wordcount_on_sun_host(rexec_world):
    testbed, executor, workers = rexec_world
    reply = run(
        testbed.env,
        executor.run_on(FIJI, "wordcount", b"a name service for evolving systems"),
    )
    assert reply["host"] == "fiji"
    assert reply["result"]["words"] == 6
    assert workers["fiji"].completed == 1


def test_job_on_xerox_host_same_client_code(rexec_world):
    testbed, executor, workers = rexec_world
    reply = run(testbed.env, executor.run_on(DLION, "checksum", b"hcs"))
    assert reply["host"] == "dlion"
    assert len(reply["result"]["sha256"]) == 64


def test_sort_job(rexec_world):
    testbed, executor, workers = rexec_world
    reply = run(testbed.env, executor.run_on(FIJI, "sort", b"b\na\nc"))
    assert reply["result"]["sorted"] == ["a", "b", "c"]


def test_catalogue(rexec_world):
    testbed, executor, workers = rexec_world
    names = run(testbed.env, executor.catalogue(FIJI))
    assert names == sorted(JOB_CATALOGUE)


def test_unknown_job_raises(rexec_world):
    testbed, executor, workers = rexec_world

    def scenario():
        with pytest.raises(RexecError):
            yield from executor.run_on(FIJI, "mine-bitcoin", b"")
        return "done"

    assert run(testbed.env, scenario()) == "done"


def test_binding_cached_across_jobs(rexec_world):
    testbed, executor, workers = rexec_world
    env = testbed.env
    run(env, executor.run_on(FIJI, "wordcount", b"x"))
    before = env.stats.counters()["hrpc.imports"]
    run(env, executor.run_on(FIJI, "wordcount", b"y"))
    assert env.stats.counters()["hrpc.imports"] == before


def test_failover_between_compute_hosts(rexec_world):
    testbed, executor, workers = rexec_world
    env = testbed.env
    # Warm bindings to both, then kill the first choice.
    run(env, executor.run_on(FIJI, "wordcount", b"warm"))
    run(env, executor.run_on(JUNE, "wordcount", b"warm"))
    testbed.fiji.crash()
    reply = run(
        env, executor.run_anywhere([FIJI, JUNE], "wordcount", b"one two")
    )
    assert reply["host"] == "june"
    assert env.stats.counters()["rexec.client.failovers"] == 1


def test_run_anywhere_all_down(rexec_world):
    testbed, executor, workers = rexec_world
    env = testbed.env
    run(env, executor.run_on(FIJI, "wordcount", b"warm"))
    run(env, executor.run_on(JUNE, "wordcount", b"warm"))
    testbed.fiji.crash()
    testbed.june.crash()
    from repro.net import NetworkError

    def scenario():
        with pytest.raises(NetworkError):
            yield from executor.run_anywhere([FIJI, JUNE], "wordcount", b"x")
        return "done"

    assert run(env, scenario()) == "done"
    with pytest.raises(ValueError):
        run(env, executor.run_anywhere([], "wordcount", b"x"))


def test_bigger_payload_costs_more(rexec_world):
    testbed, executor, workers = rexec_world
    env = testbed.env
    run(env, executor.run_on(FIJI, "checksum", b"warm"))
    start = env.now
    run(env, executor.run_on(FIJI, "checksum", b"x" * 100))
    small = env.now - start
    start = env.now
    run(env, executor.run_on(FIJI, "checksum", b"x" * 100_000))
    large = env.now - start
    assert large > 2 * small
