"""Reproducibility: the whole stack is deterministic per seed."""

from repro.core import Arrangement, HNSName
from repro.workloads import build_stack, build_testbed

FIJI = HNSName("BIND-cs", "fiji.cs.washington.edu")


def measure(seed):
    testbed = build_testbed(seed=seed)
    stack = build_stack(testbed, Arrangement.ALL_REMOTE)
    env = testbed.env

    def timed():
        start = env.now
        binding = yield from stack.importer.import_binding("DesiredService", FIJI)
        return env.now - start, str(binding.endpoint)

    stack.flush_all_caches()
    a = env.run(until=env.process(timed()))
    b = env.run(until=env.process(timed()))
    return a, b, env.now, env.stats.counters()


def test_identical_seeds_identical_runs():
    assert measure(42) == measure(42)


def test_different_seeds_same_results_same_structure():
    """Different seeds may shift timings (none here: the calibrated
    latency model is deterministic), but never results or counts."""
    a = measure(1)
    b = measure(2)
    assert a[0][1] == b[0][1]          # same binding
    assert a[3] == b[3]                # same operation counts


def test_report_is_stable():
    from repro.harness.report import table_3_1

    first = [(r.label, r.measured) for r in table_3_1(seed=5).rows]
    second = [(r.label, r.measured) for r in table_3_1(seed=5).rows]
    assert first == second
