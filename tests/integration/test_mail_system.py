"""The HCS mail system over the HNS: heterogeneous delivery, spooling."""

import pytest

from repro.core import HNSName, NsmStub
from repro.core.import_call import HrpcImporter, LocalFinder
from repro.hrpc import HrpcRuntime
from repro.mail import MAIL_PROGRAM, MailAgent, MailMessage, MailboxServer
from repro.workloads import build_testbed

SCHWARTZ = HNSName("BIND-cs", "schwartz.cs.washington.edu")
LEVY = HNSName("CH-hcs", "levy:hcs:uw")


def run(env, gen):
    return env.run(until=env.process(gen))


@pytest.fixture
def mail_world():
    """Testbed + mailbox servers on june (BIND side) and dlion (CH side)
    + a fully wired mail agent on the client."""
    testbed = build_testbed(seed=55)
    env = testbed.env

    # Mail hosts run the hcsmail service and register it with their
    # native binding protocols.
    june_box = MailboxServer(testbed.june, mailboxes=["schwartz"])
    from repro.hrpc import Portmapper

    june_pm = Portmapper(testbed.june, calibration=testbed.calibration)
    june_pm.listen()
    june_pm.register_local(MAIL_PROGRAM, june_box.endpoint.port)

    dlion_box = MailboxServer(testbed.dlion, mailboxes=["levy"])
    binder = testbed.dlion.service_at(5002)  # the Courier binder
    binder.advertise_local(MAIL_PROGRAM, dlion_box.endpoint.port)

    # The agent: HNS + mail NSMs + binding NSMs, all linked in.
    hns = testbed.make_hns(testbed.client)
    nsms = [
        testbed.make_bind_mail_nsm(testbed.client),
        testbed.make_ch_mail_nsm(testbed.client),
        testbed.make_bind_binding_nsm(testbed.client),
        testbed.make_ch_binding_nsm(testbed.client),
    ]
    stub = NsmStub(testbed.client)
    for nsm in nsms:
        hns.link_local_nsm(nsm)
        stub.link_local(nsm)
    runtime = HrpcRuntime(testbed.client, testbed.internet)
    importer = HrpcImporter.direct(
        testbed.client,
        LocalFinder(hns),
        stub,
        calibration=testbed.calibration,
    )
    agent = MailAgent(testbed.client, hns, stub, importer, runtime)
    return testbed, agent, june_box, dlion_box


def message(*recipients, subject="measurements", body="Table 3.1 attached"):
    return MailMessage(
        sender=HNSName("BIND-cs", "zahorjan.cs.washington.edu"),
        recipients=tuple(recipients),
        subject=subject,
        body=body,
    )


def test_message_validation():
    with pytest.raises(ValueError):
        MailMessage(SCHWARTZ, (), "s", "b")
    m = message(SCHWARTZ)
    assert m.size_bytes > 0
    assert "msg #" in str(m)


def test_deliver_to_bind_side_user(mail_world):
    testbed, agent, june_box, dlion_box = mail_world
    report = run(testbed.env, agent.submit(message(SCHWARTZ)))
    assert report.fully_delivered
    stored = june_box.messages_in("schwartz")
    assert len(stored) == 1
    assert stored[0].subject == "measurements"


def test_deliver_to_clearinghouse_side_user(mail_world):
    testbed, agent, june_box, dlion_box = mail_world
    report = run(testbed.env, agent.submit(message(LEVY)))
    assert report.fully_delivered
    assert len(dlion_box.messages_in("levy")) == 1


def test_one_message_heterogeneous_recipients(mail_world):
    """One submit, recipients on two different system types."""
    testbed, agent, june_box, dlion_box = mail_world
    report = run(testbed.env, agent.submit(message(SCHWARTZ, LEVY)))
    assert report.fully_delivered
    assert len(june_box.messages_in("schwartz")) == 1
    assert len(dlion_box.messages_in("levy")) == 1
    counters = testbed.env.stats.counters()
    assert counters["mail.agent.sent"] == 2


def test_unknown_user_spools(mail_world):
    testbed, agent, june_box, dlion_box = mail_world
    ghost = HNSName("BIND-cs", "ghost.cs.washington.edu")
    report = run(testbed.env, agent.submit(message(ghost, SCHWARTZ)))
    assert not report.fully_delivered
    assert [r for r, _ in report.queued] == [ghost]
    assert report.delivered == [SCHWARTZ]
    assert agent.spool_size == 1


def test_down_mail_host_spools_then_retry_succeeds(mail_world):
    testbed, agent, june_box, dlion_box = mail_world
    env = testbed.env
    testbed.june.crash()
    report = run(env, agent.submit(message(SCHWARTZ)))
    assert not report.fully_delivered
    assert agent.spool_size == 1
    # Host comes back; a retry pass drains the spool.
    testbed.june.restart()
    sent = run(env, agent.retry_spool())
    assert sent == 1
    assert agent.spool_size == 0
    assert len(june_box.messages_in("schwartz")) == 1


def test_spool_bounces_after_max_attempts(mail_world):
    testbed, agent, june_box, dlion_box = mail_world
    env = testbed.env
    ghost = HNSName("BIND-cs", "ghost.cs.washington.edu")
    run(env, agent.submit(message(ghost)))
    for _ in range(MailAgent.MAX_ATTEMPTS):
        run(env, agent.retry_spool())
    assert agent.spool_size == 0
    assert env.stats.counters().get("mail.agent.bounced") == 1


def test_mailbox_server_operations(mail_world):
    testbed, agent, june_box, dlion_box = mail_world
    env = testbed.env
    run(env, agent.submit(message(SCHWARTZ, subject="one")))
    run(env, agent.submit(message(SCHWARTZ, subject="two")))

    # A mail reader lists and fetches over HRPC.
    runtime = HrpcRuntime(testbed.client, testbed.internet)
    from repro.hrpc import HRPCBinding

    binding = HRPCBinding(june_box.endpoint, MAIL_PROGRAM, suite="sunrpc")

    def reader():
        summaries = yield from runtime.call(binding, "list", "schwartz")
        fetched = yield from runtime.call(
            binding, "fetch", "schwartz", summaries[0]["msg_id"]
        )
        return summaries, fetched

    summaries, fetched = run(env, reader())
    assert [s["subject"] for s in summaries] == ["one", "two"]
    assert fetched.subject == "one"


def test_mailbox_errors(mail_world):
    testbed, agent, june_box, dlion_box = mail_world
    from repro.mail.mailbox import MailboxError

    with pytest.raises(MailboxError):
        june_box.messages_in("nobody")
    with pytest.raises(ValueError):
        june_box.create_mailbox("")
    june_box.create_mailbox("newbox")
    assert june_box.messages_in("newbox") == []
