"""End-to-end integration: the full HNS stack on the simulated testbed."""

import pytest

from repro.core import Arrangement, HNSName
from repro.hrpc import HrpcRuntime
from repro.workloads import QueryWorkload, build_stack, build_testbed

FIJI = HNSName("BIND-cs", "fiji.cs.washington.edu")
DLION = HNSName("CH-hcs", "dlion:hcs:uw")


def run(env, gen):
    return env.run(until=env.process(gen))


def test_full_import_and_call_across_both_system_types():
    """One client binds to a Sun service and a Xerox service through the
    same code path, then calls both through HRPC emulation."""
    testbed = build_testbed(seed=21)
    env = testbed.env
    runtime = HrpcRuntime(testbed.client, testbed.internet)

    sun_stack = build_stack(testbed, Arrangement.ALL_LOCAL)
    sun_binding = run(env, sun_stack.importer.import_binding("DesiredService", FIJI))
    assert run(env, runtime.call(sun_binding, "ping", 1)) == ("pong", 1)

    ch_stack = build_stack(testbed, Arrangement.REMOTE_NSMS, name_service="CH-hcs")
    ch_binding = run(env, ch_stack.importer.import_binding("PrintService", DLION))
    assert ch_binding.suite == "courier"
    assert run(env, runtime.call(ch_binding, "ping", 2)) == ("pong", 2)


def test_service_relocation_visible_after_ttl():
    """A service moves hosts; the HNS picks up the change through the
    native name service once TTLs expire — no reregistration involved."""
    from repro.bind import ResourceRecord, RRType

    testbed = build_testbed(seed=22)
    env = testbed.env
    stack = build_stack(testbed, Arrangement.ALL_LOCAL)
    zone = testbed.public_server.zones[0]
    zone.replace(
        "fiji.cs.washington.edu",
        RRType.A,
        [
            ResourceRecord.a_record(
                "fiji.cs.washington.edu", str(testbed.fiji.address), ttl=1000
            )
        ],
    )
    binding1 = run(env, stack.importer.import_binding("DesiredService", FIJI))
    assert binding1.endpoint.address == testbed.fiji.address

    # The host "moves": new address record via the NATIVE interface, and
    # the service infrastructure moves with it.
    new_home = testbed.internet.add_host("fiji2", system_type="sun")
    from repro.hrpc import HrpcServer, Portmapper

    pm = Portmapper(new_home, calibration=testbed.calibration)
    pm.listen()
    pm.register_local("DesiredService", 9999)
    server = HrpcServer(new_home)

    def ping(ctx, *args):
        yield from ctx.host.cpu.compute(0.1)
        return ("pong-from-new-home",) + args

    server.program("DesiredService").procedure("ping", ping)
    server.listen(9999)
    zone.replace(
        "fiji.cs.washington.edu",
        RRType.A,
        [
            ResourceRecord.a_record(
                "fiji.cs.washington.edu", str(new_home.address), ttl=1000
            )
        ],
    )
    # Within TTL the old cached binding persists...
    binding2 = run(env, stack.importer.import_binding("DesiredService", FIJI))
    assert binding2.endpoint.address == testbed.fiji.address
    # ...after TTL expiry the new location is found.
    env.run(until=env.now + 1500)
    binding3 = run(env, stack.importer.import_binding("DesiredService", FIJI))
    assert binding3.endpoint.address == new_home.address
    runtime = HrpcRuntime(testbed.client, testbed.internet)
    assert run(env, runtime.call(binding3, "ping"))[0] == "pong-from-new-home"


def test_meta_server_crash_breaks_cold_lookups_only():
    """With the meta-BIND down, cached FindNSMs still work; cold ones
    time out — exactly the availability tradeoff of a cached design."""
    from repro.net import TransportTimeout

    testbed = build_testbed(seed=23)
    env = testbed.env
    stack = build_stack(testbed, Arrangement.ALL_LOCAL)
    # Warm the caches.
    run(env, stack.importer.import_binding("DesiredService", FIJI))
    testbed.meta_host.crash()
    # Warm path still fine:
    binding = run(env, stack.importer.import_binding("DesiredService", FIJI))
    assert binding.endpoint.port == 9999
    # Cold path fails:
    stack.flush_hns_caches()

    def cold():
        with pytest.raises(TransportTimeout):
            yield from stack.importer.import_binding("DesiredService", FIJI)
        return "failed-as-expected"

    assert run(env, cold()) == "failed-as-expected"
    # Recovery:
    testbed.meta_host.restart()
    binding = run(env, stack.importer.import_binding("DesiredService", FIJI))
    assert binding.endpoint.port == 9999


def test_nsm_host_crash_with_remote_nsms():
    from repro.core import NsmUnavailable

    testbed = build_testbed(seed=24)
    env = testbed.env
    stack = build_stack(testbed, Arrangement.REMOTE_NSMS)
    run(env, stack.importer.import_binding("DesiredService", FIJI))
    testbed.nsm_host.crash()
    stack.flush_nsm_caches()

    def cold():
        # The importer retries the timeouts until the NSM's circuit
        # breaker trips, then FindNSM fails fast: the dead NSM has no
        # linked-in copy to route to in this arrangement.
        with pytest.raises(NsmUnavailable):
            yield from stack.importer.import_binding("DesiredService", FIJI)
        return "failed"

    assert run(env, cold()) == "failed"
    assert stack.hns.nsm_breakers.states()[stack.binding_nsm.name] == "open"


def test_workload_over_hns_achieves_high_hit_ratio():
    """A Zipf workload over a small population mostly hits the caches."""
    testbed = build_testbed(seed=25)
    env = testbed.env
    stack = build_stack(testbed, Arrangement.ALL_LOCAL)
    population = [
        (FIJI, "HRPCBinding", {"service": "DesiredService"}),
        (HNSName("BIND-cs", "june.cs.washington.edu"), "HostAddress", {}),
        (HNSName("BIND-cs", "ns0.cs.washington.edu"), "HostAddress", {}),
    ]
    workload = QueryWorkload(env, population, mean_interarrival_ms=50, zipf_s=1.2)
    events = workload.generate(30)
    hostaddr_nsm = stack.hns._host_address_nsms["BIND-cs"]

    def drive():
        done = 0
        for event in events:
            if event.at_ms > env.now:
                yield env.timeout(event.at_ms - env.now)
            if event.query_class == "HRPCBinding":
                yield from stack.importer.import_binding(
                    event.params["service"], event.hns_name
                )
            else:
                yield from hostaddr_nsm.query(event.hns_name)
            done += 1
        return done

    assert run(env, drive()) == 30
    meta_cache = stack.hns.metastore.cache
    assert meta_cache.hit_ratio > 0.7


def test_concurrent_clients_share_remote_hns_cache():
    """Two clients against one remote HNS: the second client's cold
    query hits the shared cache — the 'q' of equation (1) made real."""
    testbed = build_testbed(seed=26)
    env = testbed.env
    stack = build_stack(testbed, Arrangement.ALL_REMOTE)
    run(env, stack.importer.import_binding("DesiredService", FIJI))

    # A second, fresh client shares the HNS server (and its cache).
    client2 = testbed.internet.add_host("client2")
    from repro.core.import_call import HrpcImporter, RemoteFinder
    from repro.core.nsm import NsmStub
    from repro.hrpc import HRPCBinding
    from repro.net.addresses import Endpoint
    from repro.workloads.scenarios import HNS_PORT

    runtime2 = HrpcRuntime(client2, testbed.internet)
    importer2 = HrpcImporter.direct(
        client2,
        RemoteFinder(
            runtime2,
            HRPCBinding(
                Endpoint(testbed.hns_host.address, HNS_PORT), "hns", suite="sunrpc"
            ),
        ),
        NsmStub(client2, runtime2),
        calibration=testbed.calibration,
    )
    start = env.now
    binding = run(env, importer2.import_binding("DesiredService", FIJI))
    elapsed = env.now - start
    assert binding.endpoint.port == 9999
    # Cold client, warm shared caches: roughly the both-hit cell (~190),
    # nowhere near the all-miss cell (~546).
    assert elapsed < 250


def test_trace_shows_figure_2_1_flow():
    """The query-processing flow of Figure 2.1 is observable in the trace."""
    testbed = build_testbed(seed=27)
    env = testbed.env
    env.trace.enabled = True
    stack = build_stack(testbed, Arrangement.ALL_LOCAL)
    run(env, stack.importer.import_binding("DesiredService", FIJI))
    categories = [r.category for r in env.trace.records]
    assert "hns" in categories      # FindNSM decision
    assert "nsm" in categories      # NSM native resolution
    assert "import" in categories   # the import wrapper
    hns_records = env.trace.filter("hns")
    assert any("FindNSM" in r.message for r in hns_records)
