"""HRPC: suites, bindings, server dispatch, runtime calls, binders."""

import pytest

from repro.hrpc import (
    BindingProtocolError,
    CourierBinder,
    CourierBinderClient,
    HRPCBinding,
    HrpcError,
    HrpcRuntime,
    HrpcServer,
    NoSuchProcedure,
    NoSuchProgram,
    PROTOCOL_SUITES,
    Portmapper,
    PortmapperClient,
    RpcReply,
    suite_named,
)
from repro.harness.calibration import DEFAULT_CALIBRATION
from repro.net import DatagramTransport, Internetwork, StreamTransport
from repro.sim import ConstantLatency, Environment

CAL = DEFAULT_CALIBRATION


@pytest.fixture
def world():
    env = Environment(seed=9)
    net = Internetwork(env)
    segment = net.add_segment(
        latency=ConstantLatency(CAL.wire_base_ms, CAL.wire_per_byte_ms)
    )
    client = net.add_host("client", segment)
    server_host = net.add_host("server", segment, system_type="sun")
    return env, net, client, server_host


def run(env, gen):
    return env.run(until=env.process(gen))


# ----------------------------------------------------------------------
# Suites and bindings
# ----------------------------------------------------------------------
def test_known_suites():
    assert {"sunrpc", "courier", "raw", "raw-tcp"} <= set(PROTOCOL_SUITES)
    sun = suite_named("sunrpc")
    assert sun.transport == "udp" and sun.data_representation == "xdr"
    assert sun.binding_protocol == "portmapper"
    courier = suite_named("courier")
    assert courier.transport == "tcp"
    assert courier.data_representation == "courier"


def test_unknown_suite_rejected():
    with pytest.raises(KeyError):
        suite_named("carrier-pigeon")


def test_raw_suite_matches_paper_remote_call_estimate():
    """Raw call CPU + ~2 ms wire ~= the paper's 33 ms C(remote call)."""
    raw = suite_named("raw")
    assert raw.call_cpu_overhead_ms + 2.0 == pytest.approx(33, abs=1.5)


def test_binding_validation(world):
    env, net, client, server_host = world
    ep = server_host.ephemeral_endpoint()
    binding = HRPCBinding(ep, "fileservice", suite="courier", system_type="xde")
    assert "fileservice" in binding.describe()
    assert binding.wire_size() > 48
    with pytest.raises(ValueError):
        HRPCBinding(ep, "")
    with pytest.raises(KeyError):
        HRPCBinding(ep, "x", suite="bogus")


# ----------------------------------------------------------------------
# Server + runtime
# ----------------------------------------------------------------------
def build_echo_server(env, server_host, port=9000):
    server = HrpcServer(server_host)

    def echo(ctx, *args):
        yield from ctx.host.cpu.compute(1.0)
        return ("echo",) + args

    def crash(ctx):
        raise LookupError("intentional server failure")
        yield  # pragma: no cover

    def sized(ctx):
        yield from ctx.host.cpu.compute(0.5)
        return RpcReply({"big": True}, result_size_bytes=4096)

    program = server.program("testprog")
    program.procedure("echo", echo)
    program.procedure("crash", crash)
    program.procedure("sized", sized)
    endpoint = server.listen(port)
    return server, endpoint


def test_call_roundtrip(world):
    env, net, client, server_host = world
    _, endpoint = build_echo_server(env, server_host)
    runtime = HrpcRuntime(client, net)
    binding = HRPCBinding(endpoint, "testprog", suite="sunrpc")

    result = run(env, runtime.call(binding, "echo", 1, "two"))
    assert result == ("echo", 1, "two")


def test_sunrpc_call_overhead_matches_table_deltas(world):
    """One inter-process Sun RPC call costs ~43 ms beyond the handler."""
    env, net, client, server_host = world
    _, endpoint = build_echo_server(env, server_host)
    runtime = HrpcRuntime(client, net)
    binding = HRPCBinding(endpoint, "testprog", suite="sunrpc")
    start = env.now
    run(env, runtime.call(binding, "echo"))
    elapsed = env.now - start
    assert elapsed - 1.0 == pytest.approx(CAL.hrpc_interproc_call_ms, rel=0.05)


def test_raw_tcp_suite_call(world):
    """The Raw suite also runs over the stream transport (raw-tcp)."""
    env, net, client, server_host = world
    _, endpoint = build_echo_server(env, server_host)
    runtime = HrpcRuntime(client, net)
    binding = HRPCBinding(endpoint, "testprog", suite="raw-tcp")
    result = run(env, runtime.call(binding, "echo", "stream"))
    assert result == ("echo", "stream")


def test_courier_call_slower_than_sunrpc(world):
    env, net, client, server_host = world
    _, endpoint = build_echo_server(env, server_host)
    runtime = HrpcRuntime(client, net)
    times = {}
    for suite in ("sunrpc", "courier"):
        binding = HRPCBinding(endpoint, "testprog", suite=suite)
        start = env.now
        run(env, runtime.call(binding, "echo"))
        times[suite] = env.now - start
    assert times["courier"] > times["sunrpc"]


def test_remote_exception_reraised_locally(world):
    env, net, client, server_host = world
    _, endpoint = build_echo_server(env, server_host)
    runtime = HrpcRuntime(client, net)
    binding = HRPCBinding(endpoint, "testprog", suite="sunrpc")

    def scenario():
        with pytest.raises(LookupError, match="intentional"):
            yield from runtime.call(binding, "crash")
        return "done"

    assert run(env, scenario()) == "done"


def test_no_such_program_and_procedure(world):
    env, net, client, server_host = world
    _, endpoint = build_echo_server(env, server_host)
    runtime = HrpcRuntime(client, net)

    def scenario():
        with pytest.raises(NoSuchProgram):
            yield from runtime.call(
                HRPCBinding(endpoint, "ghostprog"), "echo"
            )
        with pytest.raises(NoSuchProcedure):
            yield from runtime.call(
                HRPCBinding(endpoint, "testprog"), "ghostproc"
            )
        return "done"

    assert run(env, scenario()) == "done"


def test_larger_reply_takes_longer(world):
    env, net, client, server_host = world
    _, endpoint = build_echo_server(env, server_host)
    runtime = HrpcRuntime(client, net)
    binding = HRPCBinding(endpoint, "testprog", suite="sunrpc")
    t0 = env.now
    run(env, runtime.call(binding, "echo"))
    small = env.now - t0
    t1 = env.now
    run(env, runtime.call(binding, "sized"))
    big = env.now - t1
    assert big > small


def test_program_registration_rules(world):
    env, net, client, server_host = world
    server = HrpcServer(server_host)
    program = server.program("p")

    def handler(ctx):
        return "x"
        yield  # pragma: no cover

    program.procedure("f", handler)
    with pytest.raises(ValueError):
        program.procedure("f", handler)
    assert program.procedures == ["f"]
    assert server.has_program("p")
    with pytest.raises(ValueError):
        server.register_program(program)
    with pytest.raises(HrpcError):
        HrpcRuntime(client, net).transport_named("smoke-signals")


# ----------------------------------------------------------------------
# Native binding protocols
# ----------------------------------------------------------------------
def test_portmapper_getport(world):
    env, net, client, server_host = world
    pm = Portmapper(server_host)
    pm.listen()
    pm.register_local("nfs", 2049)
    udp = DatagramTransport(net)
    pmc = PortmapperClient(client, udp)
    port = run(env, pmc.get_port(server_host.address, "nfs"))
    assert port == 2049


def test_portmapper_unknown_program(world):
    env, net, client, server_host = world
    Portmapper(server_host).listen()
    pmc = PortmapperClient(client, DatagramTransport(net))

    def scenario():
        with pytest.raises(BindingProtocolError):
            yield from pmc.get_port(server_host.address, "ghost")
        return "done"

    assert run(env, scenario()) == "done"


def test_portmapper_remote_set_and_clear(world):
    env, net, client, server_host = world
    Portmapper(server_host).listen()
    pmc = PortmapperClient(client, DatagramTransport(net))
    run(env, pmc.set_port(server_host.address, "svc", 7777))
    assert run(env, pmc.get_port(server_host.address, "svc")) == 7777
    run(env, pmc.set_port(server_host.address, "svc", 0))

    def scenario():
        with pytest.raises(BindingProtocolError):
            yield from pmc.get_port(server_host.address, "svc")
        return "done"

    assert run(env, scenario()) == "done"


def test_portmapper_does_two_exchanges(world):
    env, net, client, server_host = world
    pm = Portmapper(server_host)
    pm.listen()
    pm.register_local("nfs", 2049)
    pmc = PortmapperClient(client, DatagramTransport(net))
    start = env.now
    run(env, pmc.get_port(server_host.address, "nfs"))
    single_exchange = CAL.portmapper_server_ms + 2.1
    assert env.now - start >= CAL.portmapper_exchanges * single_exchange * 0.9


def test_courier_binder_locate(world):
    env, net, client, server_host = world
    binder = CourierBinder(server_host)
    binder.listen()
    binder.advertise_local("fileservice", 6000)
    cbc = CourierBinderClient(client, StreamTransport(net))
    port = run(env, cbc.locate(server_host.address, "fileservice"))
    assert port == 6000


def test_courier_binder_unknown_service(world):
    env, net, client, server_host = world
    CourierBinder(server_host).listen()
    cbc = CourierBinderClient(client, StreamTransport(net))

    def scenario():
        with pytest.raises(BindingProtocolError):
            yield from cbc.locate(server_host.address, "ghost")
        return "done"

    assert run(env, scenario()) == "done"


def test_courier_binder_advertise_remote(world):
    env, net, client, server_host = world
    CourierBinder(server_host).listen()
    cbc = CourierBinderClient(client, StreamTransport(net))
    run(env, cbc.advertise(server_host.address, "mail", 6100))
    assert run(env, cbc.locate(server_host.address, "mail")) == 6100


def test_binding_protocol_validation(world):
    env, net, client, server_host = world
    pm = Portmapper(server_host)
    with pytest.raises(ValueError):
        pm.register_local("x", 0)
    binder = CourierBinder(server_host)
    with pytest.raises(ValueError):
        binder.advertise_local("x", 99999)
