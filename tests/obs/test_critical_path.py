"""Critical-path extraction — including the paper's six mappings.

The small tests drive hand-built span trees through the greedy walk;
the acceptance test at the bottom traces a real cold Import on the full
testbed and asserts the blocking chain reproduces the sequential
mapping structure of the paper's Figure 2.1.
"""

import pytest

from repro.core import Arrangement, HNSName
from repro.obs import CriticalPath
from repro.sim import Environment
from repro.workloads import build_stack, build_testbed

FIJI = HNSName("BIND-cs", "fiji.cs.washington.edu")


def run(env, gen):
    return env.run(until=env.process(gen))


def traced(seed=1):
    env = Environment(seed=seed)
    env.obs.enable()
    return env


# ----------------------------------------------------------------------
# The greedy backward walk
# ----------------------------------------------------------------------
def test_sequential_children_all_block_the_parent():
    env = traced()

    def work():
        with env.obs.span("root"):
            with env.obs.span("first"):
                yield env.timeout(10.0)
            with env.obs.span("second"):
                yield env.timeout(20.0)

    run(env, work())
    path = CriticalPath.from_trace(env.obs.spans)
    assert path.names() == ["root", "first", "second"]
    assert path.total_ms == 30.0


def test_overlapping_loser_falls_off_the_path():
    env = traced()

    def leg(label, delay, parent):
        with env.obs.span("leg", parent=parent) as span:
            span.set(which=label)
            yield env.timeout(delay)

    def work():
        with env.obs.span("root") as root:
            env.process(leg("fast", 10.0, root))
            env.process(leg("slow", 30.0, root))
            yield env.timeout(30.0)

    run(env, work())
    path = CriticalPath.from_trace(env.obs.spans)
    # Both legs start together; only the one the root actually waited
    # on (the later-ending) is on the blocking chain.
    assert path.names() == ["root", "leg"]
    assert path.steps[1].span.attrs["which"] == "slow"


def test_self_ms_is_duration_minus_on_path_children():
    env = traced()

    def work():
        with env.obs.span("root"):
            yield env.timeout(5.0)
            with env.obs.span("child"):
                yield env.timeout(10.0)
            yield env.timeout(5.0)

    run(env, work())
    path = CriticalPath.from_trace(env.obs.spans)
    by_name = {step.span.name: step for step in path.steps}
    assert by_name["root"].self_ms == pytest.approx(10.0)
    assert by_name["child"].self_ms == pytest.approx(10.0)
    assert by_name["root"].depth == 0
    assert by_name["child"].depth == 1


def test_contains_sequence_is_ordered_with_gaps():
    env = traced()

    def work():
        with env.obs.span("a"):
            with env.obs.span("b"):
                yield env.timeout(1.0)
            with env.obs.span("c"):
                yield env.timeout(1.0)

    run(env, work())
    path = CriticalPath.from_trace(env.obs.spans)
    assert path.contains_sequence(["a", "c"])
    assert path.contains_sequence([])
    assert not path.contains_sequence(["c", "a"])
    assert not path.contains_sequence(["a", "z"])


def test_from_trace_requires_finished_spans():
    with pytest.raises(ValueError):
        CriticalPath.from_trace([])


def test_orphan_spans_fall_back_to_the_earliest_as_root():
    env = traced()

    def work():
        with env.obs.span("root"):
            with env.obs.span("child"):
                yield env.timeout(2.0)

    run(env, work())
    child_only = env.obs.spans_named("child")
    path = CriticalPath.from_trace(child_only)
    assert path.root.name == "child"
    assert path.names() == ["child"]


def test_render_reports_totals_and_steps():
    env = traced()

    def work():
        with env.obs.span("root") as span:
            span.set(context="BIND-cs")
            yield env.timeout(4.0)

    run(env, work())
    report = CriticalPath.from_trace(env.obs.spans).render()
    assert "critical path: 4.0 ms over 1 spans" in report
    assert "- root" in report
    assert "(context=BIND-cs)" in report


# ----------------------------------------------------------------------
# Acceptance: the six sequential mappings, computed
# ----------------------------------------------------------------------
def test_cold_import_critical_path_reproduces_the_six_mappings():
    """The blocking chain of a traced cold Import IS Figure 2.1.

    Mappings 1-3 (context -> NS -> NSM name -> NSM record) run against
    the meta store, host resolution recurses through mappings 1-2 for
    the NSM host, and the NSM query itself closes the chain.
    """
    testbed = build_testbed(seed=5)
    stack = build_stack(testbed, Arrangement.ALL_LOCAL)
    env = testbed.env
    env.obs.enable()
    run(env, stack.importer.import_binding("DesiredService", FIJI))

    roots = env.obs.roots()
    assert len(roots) == 1, [r.name for r in roots]
    assert roots[0].name == "hrpc.import"
    # Every span of the cold import belongs to the one trace.
    assert {s.trace_id for s in env.obs.spans} == {roots[0].trace_id}

    path = CriticalPath.from_trace(env.obs.trace_spans(roots[0].trace_id))
    assert path.contains_sequence(
        [
            "hrpc.import",
            "hns.find_nsm",
            "meta.context_to_ns",  # mapping 1
            "meta.nsm_name",  # mapping 2
            "meta.nsm_record",  # mapping 3
            "meta.context_to_ns",  # host-address recursion
            "meta.nsm_name",
            "nsm.query",  # the NSM answers (mappings 4-6)
        ]
    ), path.render()
    assert path.total_ms > 0.0
    assert path.total_ms == pytest.approx(path.root.duration_ms)
