"""Span mechanics: identity, nesting, sampling, and the off switch."""

import pytest

from repro.obs import NULL_SPAN, NullSpan
from repro.sim import Environment


def run(env, gen):
    return env.run(until=env.process(gen))


# ----------------------------------------------------------------------
# Disabled: the zero-cost path
# ----------------------------------------------------------------------
def test_disabled_span_is_the_shared_null_span():
    env = Environment(seed=1)
    span = env.obs.span("hns.find_nsm", context="BIND-cs")
    assert span is NULL_SPAN
    with span as s:
        s.set(anything="goes")
    assert env.obs.spans == []
    assert env.obs.dropped == 0


def test_null_span_carries_no_identity():
    assert NULL_SPAN.trace_id == 0
    assert NULL_SPAN.span_id == 0
    assert NULL_SPAN.parent_id is None
    assert not NULL_SPAN.recording


# ----------------------------------------------------------------------
# Recording basics
# ----------------------------------------------------------------------
def test_span_records_simulated_times_attrs_and_status():
    env = Environment(seed=2)
    env.obs.enable()

    def work():
        with env.obs.span("hns.op", kind="test") as span:
            yield env.timeout(5.0)
            span.set(outcome="done")

    run(env, work())
    (span,) = env.obs.spans
    assert span.name == "hns.op"
    assert span.start_ms == 0.0
    assert span.end_ms == 5.0
    assert span.duration_ms == 5.0
    assert span.finished
    assert span.attrs == {"kind": "test", "outcome": "done"}
    assert span.status == "ok" and span.error == ""
    assert span.parent_id is None
    assert span.trace_id != 0


def test_nested_spans_share_the_trace_and_link_parents():
    env = Environment(seed=3)
    env.obs.enable()

    def work():
        with env.obs.span("outer") as outer:
            with env.obs.span("inner") as inner:
                yield env.timeout(1.0)
            assert inner.parent_id == outer.span_id
            assert inner.trace_id == outer.trace_id

    run(env, work())
    # Completion order: inner closes first.
    assert [s.name for s in env.obs.spans] == ["inner", "outer"]
    assert env.obs.roots()[0].name == "outer"
    assert env.obs.trace_spans(env.obs.roots()[0].trace_id) == env.obs.spans


def test_explicit_parent_none_forces_a_new_root():
    env = Environment(seed=4)
    env.obs.enable()

    def work():
        with env.obs.span("outer") as outer:
            with env.obs.span("detached", parent=None) as detached:
                yield env.timeout(1.0)
            assert detached.parent_id is None
            assert detached.trace_id != outer.trace_id

    run(env, work())
    assert len(env.obs.roots()) == 2
    assert len(env.obs.traces()) == 2


def test_name_is_positional_only_so_a_name_attribute_is_legal():
    env = Environment(seed=5)
    env.obs.enable()
    with env.obs.span("hns.find_nsm", name="BIND-cs::fiji") as span:
        pass
    assert span.attrs["name"] == "BIND-cs::fiji"
    assert span.name == "hns.find_nsm"


def test_exception_marks_the_span_as_error_and_still_records():
    env = Environment(seed=6)
    env.obs.enable()
    with pytest.raises(ValueError):
        with env.obs.span("doomed"):
            raise ValueError("boom")
    (span,) = env.obs.spans
    assert span.status == "error"
    assert span.error == "ValueError"
    assert span.finished


def test_current_returns_the_innermost_open_span():
    env = Environment(seed=7)
    env.obs.enable()
    assert env.obs.current() is None
    with env.obs.span("outer") as outer:
        assert env.obs.current() is outer
        with env.obs.span("inner") as inner:
            assert env.obs.current() is inner
        assert env.obs.current() is outer
    assert env.obs.current() is None


# ----------------------------------------------------------------------
# Cross-process propagation
# ----------------------------------------------------------------------
def test_spawned_process_does_not_inherit_implicitly():
    env = Environment(seed=8)
    env.obs.enable()

    def child():
        with env.obs.span("child"):
            yield env.timeout(1.0)

    def parent():
        with env.obs.span("parent"):
            env.process(child())
            yield env.timeout(5.0)

    run(env, parent())
    child_span = env.obs.spans_named("child")[0]
    parent_span = env.obs.spans_named("parent")[0]
    # A fresh process starts a fresh trace unless the parent is passed.
    assert child_span.parent_id is None
    assert child_span.trace_id != parent_span.trace_id


def test_explicit_parent_carries_the_trace_across_processes():
    env = Environment(seed=9)
    env.obs.enable()

    def child(parent):
        with env.obs.span("child", parent=parent):
            yield env.timeout(1.0)

    def parent():
        with env.obs.span("parent"):
            env.process(child(env.obs.current()))
            yield env.timeout(5.0)

    run(env, parent())
    child_span = env.obs.spans_named("child")[0]
    parent_span = env.obs.spans_named("parent")[0]
    assert child_span.parent_id == parent_span.span_id
    assert child_span.trace_id == parent_span.trace_id
    assert len(env.obs.traces()) == 1


# ----------------------------------------------------------------------
# Sampling, caps, determinism
# ----------------------------------------------------------------------
def test_sampling_keeps_every_nth_root_and_mutes_descendants():
    env = Environment(seed=10)
    env.obs.enable(sample_every=2)
    for _ in range(4):
        with env.obs.span("root") as root:
            with env.obs.span("child") as child:
                if not root.recording:
                    # Sampled-out root: descendants no-op too.
                    assert isinstance(root, NullSpan)
                    assert child is NULL_SPAN
    # Roots 1 and 3 of 4 are kept, each with its child.
    assert len(env.obs.roots()) == 2
    assert len(env.obs.spans_named("child")) == 2
    assert len(env.obs.spans) == 4


def test_sample_every_must_be_positive():
    env = Environment(seed=11)
    with pytest.raises(ValueError):
        env.obs.enable(sample_every=0)


def test_max_spans_cap_counts_drops_and_clear_resets():
    env = Environment(seed=12)
    env.obs.enable()
    env.obs.max_spans = 2
    for _ in range(3):
        with env.obs.span("s", parent=None):
            pass
    assert len(env.obs.spans) == 2
    assert env.obs.dropped == 1
    env.obs.clear()
    assert env.obs.spans == []
    assert env.obs.dropped == 0


def test_trace_ids_replay_deterministically_per_seed():
    def one_trace(seed):
        env = Environment(seed=seed)
        env.obs.enable()
        with env.obs.span("root") as span:
            pass
        return span.trace_id

    assert one_trace(7) == one_trace(7)
    assert one_trace(7) != one_trace(8)


def test_trace_id_draws_come_from_a_dedicated_stream():
    """Tracing must not advance any RNG stream a workload reads."""
    env_plain = Environment(seed=13)
    before = env_plain.rng.stream("net.latency").random()

    env_traced = Environment(seed=13)
    env_traced.obs.enable()
    with env_traced.obs.span("root"):
        pass
    after = env_traced.rng.stream("net.latency").random()
    assert before == after
