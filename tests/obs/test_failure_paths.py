"""Trace propagation across the failure paths (PR 5 satellite).

Degraded resolutions must trace as *one* causally linked story: the
retry rounds, the stale answer that masked an outage, the hedge leg
that lost — all annotated spans under the trace id of the operation
that triggered them.
"""

import dataclasses

from repro.bind import BindResolver, BindServer, ResourceRecord, RRType, Zone
from repro.core import HNSName
from repro.harness.calibration import DEFAULT_CALIBRATION
from repro.net import DatagramTransport, Internetwork
from repro.resolution import ReplicaPolicy
from repro.sim import ConstantLatency, Environment
from repro.workloads import build_testbed
from repro.workloads.scenarios import BIND_CONTEXT, BIND_NS

FIJI = HNSName("BIND-cs", "fiji.cs.washington.edu")


def run(env, gen):
    return env.run(until=env.process(gen))


def sleep(env, ms):
    def idle():
        yield env.timeout(ms)

    run(env, idle())


# ----------------------------------------------------------------------
# Retried FindNSM: the outage and the recovery in one trace
# ----------------------------------------------------------------------
def test_find_nsm_retry_rounds_trace_under_one_root():
    testbed = build_testbed(seed=18)
    env = testbed.env
    hns = testbed.make_hns(testbed.client)
    env.obs.enable()
    # The public BIND answers the native HostAddress lookup (mapping 6);
    # killing it fails FindNSM after the meta mappings have succeeded.
    testbed.public_host.crash()

    def medic():
        while env.stats.counter("hns.find_nsm.retries").value < 1:
            yield env.timeout(100.0)
        testbed.public_host.restart()

    env.process(medic())
    binding = run(env, hns.find_nsm(FIJI, "HRPCBinding"))
    assert binding.program == "nsm.HRPCBinding-BIND-cs"

    roots = env.obs.roots()
    assert len(roots) == 1, [r.name for r in roots]
    root = roots[0]
    assert root.name == "hns.find_nsm"
    assert root.attrs["name"] == FIJI.name
    assert {s.trace_id for s in env.obs.spans} == {root.trace_id}

    attempts = env.obs.spans_named("resolution.attempt")
    failed = [s for s in attempts if s.status == "error"]
    succeeded = [s for s in attempts if s.status == "ok"]
    assert failed and succeeded
    # The retry is visible as attempt indices, not just a counter.
    assert {s.attrs["attempt"] for s in attempts} >= {0, 1}


# ----------------------------------------------------------------------
# Retried-then-served-stale: the grace period, annotated
# ----------------------------------------------------------------------
def test_stale_meta_read_is_annotated_after_failed_rounds():
    calibration = dataclasses.replace(DEFAULT_CALIBRATION, meta_ttl_ms=5_000)
    testbed = build_testbed(seed=14, calibration=calibration)
    env = testbed.env
    metastore = testbed.make_metastore(testbed.client)
    assert run(env, metastore.context_to_name_service(BIND_CONTEXT)) == BIND_NS
    testbed.meta_host.crash()
    sleep(env, 6_000)  # past the TTL but within the stale window

    env.obs.enable()  # capture only the degraded read
    assert run(env, metastore.context_to_name_service(BIND_CONTEXT)) == BIND_NS
    assert env.stats.counter("bind.meta@client.stale_hits").value == 1

    roots = env.obs.roots()
    assert len(roots) == 1, [r.name for r in roots]
    root = roots[0]
    assert {s.trace_id for s in env.obs.spans} == {root.trace_id}

    stale = [
        s
        for s in env.obs.spans_named("bind.fetch")
        if s.attrs.get("served_stale")
    ]
    assert len(stale) == 1
    # The stale answer came *after* real retry rounds against the dead
    # server: every leg errored, and the rounds preceded the serve.
    legs = env.obs.spans_named("bind.leg")
    assert legs
    assert all(s.attrs.get("outcome") == "error" for s in legs)
    assert all(s.end_ms <= stale[0].end_ms for s in legs)


# ----------------------------------------------------------------------
# Hedged query: winner and loser under the same trace
# ----------------------------------------------------------------------
class StallServer(BindServer):
    """A BindServer that can be told to sit on requests for a while."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.stall_ms = 0.0

    def handle(self, datagram, responder):
        if self.stall_ms:
            yield self.env.timeout(self.stall_ms)
        yield from super().handle(datagram, responder)


def make_cluster(replica_policy, seed=41):
    cal = DEFAULT_CALIBRATION
    env = Environment(seed=seed)
    net = Internetwork(env)
    seg = net.add_segment(
        latency=ConstantLatency(cal.wire_base_ms, cal.wire_per_byte_ms)
    )
    client = net.add_host("client", seg)
    primary_host = net.add_host("ns-primary", seg)
    secondary_host = net.add_host("ns-secondary", seg)

    def make_zone():
        zone = Zone("hns")
        zone.add(
            ResourceRecord.text_record(
                "a.ctx.hns", "ns=one", rtype=RRType.UNSPEC, ttl=3_600_000
            )
        )
        return zone

    primary = StallServer(primary_host, zones=[make_zone()], lookup_cost_ms=4.8)
    secondary = BindServer(
        secondary_host, zones=[make_zone()], lookup_cost_ms=4.8
    )
    primary_ep = primary.listen()
    secondary_ep = secondary.listen()
    udp = DatagramTransport(net, retries=0, retry_timeout_ms=200)
    resolver = BindResolver(
        client,
        udp,
        primary_ep,
        secondaries=[secondary_ep],
        replica_policy=replica_policy,
        name="r",
    )
    return env, resolver, primary


def lookup_once(env, resolver):
    def go():
        records = yield from resolver.lookup("a.ctx.hns", RRType.UNSPEC)
        return records

    return run(env, go())


def test_hedge_winner_and_loser_share_the_trace():
    policy = ReplicaPolicy(adaptive=False, hedge_min_samples=4)
    env, resolver, primary = make_cluster(policy)
    for _ in range(6):
        lookup_once(env, resolver)  # warm the hedge-delay window

    # Stall the primary past the hedge delay but under the transport
    # timeout: the hedge wins, the primary still answers — and loses.
    primary.stall_ms = 60.0
    env.obs.enable()
    records = lookup_once(env, resolver)
    assert records[0].text == "ns=one"
    assert env.stats.counter("bind.r.hedges").value >= 1
    sleep(env, 500.0)  # let the losing leg finish and record

    roots = env.obs.roots()
    assert len(roots) == 1, [r.name for r in roots]
    root = roots[0]
    assert root.name == "bind.lookup"

    legs = env.obs.spans_named("bind.leg")
    outcomes = sorted(s.attrs.get("outcome") for s in legs)
    assert outcomes == ["lost", "won"], outcomes
    # The loser is causally tied to the same resolution, not orphaned.
    assert {s.trace_id for s in legs} == {root.trace_id}
    winner = next(s for s in legs if s.attrs["outcome"] == "won")
    loser = next(s for s in legs if s.attrs["outcome"] == "lost")
    assert winner.attrs["hedge"] is True
    assert loser.attrs["hedge"] is False
    assert winner.end_ms <= loser.end_ms
