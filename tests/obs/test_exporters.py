"""Exporter shapes: JSON, Chrome trace_event, and the text tree."""

import json

from repro.obs import (
    CriticalPath,
    chrome_trace,
    render_trace,
    trace_to_json,
    write_chrome_trace,
    write_json,
)
from repro.sim import Environment


def run(env, gen):
    return env.run(until=env.process(gen))


def small_trace(seed=1):
    env = Environment(seed=seed)
    env.obs.enable()

    def work():
        with env.obs.span("hns.find_nsm", context="BIND-cs") as root:
            with env.obs.span("meta.context_to_ns"):
                yield env.timeout(10.0)
            yield env.timeout(5.0)
        return root

    root = run(env, work())
    return env, root


# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------
def test_trace_to_json_shapes_one_document_per_trace():
    env, root = small_trace()
    doc = trace_to_json(env.obs)
    assert doc["dropped_spans"] == 0
    (trace,) = doc["traces"]
    assert trace["trace_id"] == f"{root.trace_id:012x}"
    by_name = {s["name"]: s for s in trace["spans"]}
    assert set(by_name) == {"hns.find_nsm", "meta.context_to_ns"}
    json_root = by_name["hns.find_nsm"]
    assert json_root["parent_id"] is None
    assert json_root["start_ms"] == 0.0
    assert json_root["end_ms"] == 15.0
    assert json_root["duration_ms"] == 15.0
    assert json_root["status"] == "ok"
    assert json_root["attrs"] == {"context": "BIND-cs"}
    child = by_name["meta.context_to_ns"]
    assert child["parent_id"] == json_root["span_id"]
    assert child["trace_id"] == trace["trace_id"]


def test_write_json_round_trips(tmp_path):
    env, _root = small_trace()
    path = tmp_path / "spans.json"
    count = write_json(env.obs, str(path))
    assert count == 2
    doc = json.loads(path.read_text())
    assert len(doc["traces"][0]["spans"]) == 2


# ----------------------------------------------------------------------
# Chrome trace_event / Perfetto
# ----------------------------------------------------------------------
def test_chrome_trace_emits_metadata_and_complete_events():
    env, root = small_trace()
    doc = chrome_trace(env.obs)
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    metadata = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in metadata} == {"process_name", "thread_name"}
    assert len(complete) == 2
    by_name = {e["name"]: e for e in complete}
    root_event = by_name["hns.find_nsm"]
    # Simulated ms expressed in microseconds, categorized by subsystem.
    assert root_event["ts"] == 0.0
    assert root_event["dur"] == 15_000.0
    assert root_event["cat"] == "hns"
    assert by_name["meta.context_to_ns"]["cat"] == "meta"
    assert root_event["args"]["trace_id"] == f"{root.trace_id:012x}"
    # One Perfetto process per trace.
    assert {e["pid"] for e in events} == {1}


def test_chrome_trace_gives_each_trace_its_own_pid():
    env = Environment(seed=2)
    env.obs.enable()

    def work():
        with env.obs.span("first"):
            yield env.timeout(1.0)
        with env.obs.span("second"):
            yield env.timeout(1.0)

    run(env, work())
    events = chrome_trace(env.obs)["traceEvents"]
    assert {e["pid"] for e in events} == {1, 2}


def test_write_chrome_trace_counts_events(tmp_path):
    env, _root = small_trace()
    path = tmp_path / "trace.json"
    count = write_chrome_trace(env.obs, str(path))
    doc = json.loads(path.read_text())
    assert count == len(doc["traceEvents"]) == 4  # 2 metadata + 2 spans


# ----------------------------------------------------------------------
# Text tree
# ----------------------------------------------------------------------
def test_render_trace_indents_children_and_marks_the_path():
    env, root = small_trace()
    spans = env.obs.trace_spans(root.trace_id)
    path = CriticalPath.from_trace(spans)
    text = render_trace(spans, critical_path=path)
    lines = text.splitlines()
    assert lines[0].startswith("* hns.find_nsm")
    assert "(context=BIND-cs)" in lines[0]
    # The child is indented and on the path too.
    assert lines[1].startswith("*   meta.context_to_ns")


def test_render_trace_handles_empty_and_errored_spans():
    assert render_trace([]) == "(no finished spans)"
    env = Environment(seed=3)
    env.obs.enable()
    try:
        with env.obs.span("doomed"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    text = render_trace(env.obs.spans)
    assert "[error: RuntimeError]" in text
