"""The span->stats pipeline: histograms plus exemplar trace ids."""

import pytest

from repro.obs import DEFAULT_BOUNDS, ExemplarStore, SpanMetrics
from repro.sim import Environment


def run(env, gen):
    return env.run(until=env.process(gen))


def test_observe_folds_spans_into_named_histograms():
    env = Environment(seed=1)
    env.obs.enable(metrics=SpanMetrics(env))

    def work():
        with env.obs.span("bind.lookup"):
            yield env.timeout(3.0)
        with env.obs.span("bind.lookup"):
            yield env.timeout(30.0)

    run(env, work())
    snap = env.stats.histograms()["obs.span.bind.lookup"]
    assert snap["total"] == 2
    assert snap["min"] == 3.0 and snap["max"] == 30.0


def test_exemplars_map_buckets_back_to_trace_ids():
    env = Environment(seed=2)
    metrics = SpanMetrics(env)
    env.obs.enable(metrics=metrics)

    def work():
        with env.obs.span("hns.find_nsm") as span:
            yield env.timeout(4.0)
        return span.trace_id

    trace_id = run(env, work())
    exemplars = metrics.exemplars.exemplars("obs.span.hns.find_nsm")
    assert metrics.exemplars.names() == ["obs.span.hns.find_nsm"]
    (ids,) = exemplars.values()
    assert ids == [trace_id]


def test_exemplar_store_caps_per_bucket_first_come():
    store = ExemplarStore(per_bucket=2)
    store.record("h", 0, 111)
    store.record("h", 0, 222)
    store.record("h", 0, 333)  # over the cap: dropped
    store.record("h", 0, 111)  # duplicate: dropped
    store.record("h", 5, 444)
    assert store.exemplars("h") == {0: [111, 222], 5: [444]}
    assert store.exemplars("missing") == {}


def test_exemplar_store_rejects_non_positive_cap():
    with pytest.raises(ValueError):
        ExemplarStore(per_bucket=0)


def test_default_bounds_are_sorted_and_span_the_latency_range():
    assert list(DEFAULT_BOUNDS) == sorted(DEFAULT_BOUNDS)
    assert DEFAULT_BOUNDS[0] <= 1.0  # sub-ms cache probes
    assert DEFAULT_BOUNDS[-1] >= 5_000.0  # retry ladders


def test_unfinished_spans_are_not_observed():
    env = Environment(seed=3)
    metrics = SpanMetrics(env)
    env.obs.enable(metrics=metrics)
    open_span = env.obs.span("open.never_closed")
    metrics.observe(open_span)  # still open: end_ms is None
    assert "obs.span.open.never_closed" not in env.stats.histograms()
