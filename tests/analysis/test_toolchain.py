"""ruff/mypy gates, skipped where the tools are not installed.

The container-local tier-1 run does not ship ruff or mypy; CI's lint
job installs them and runs them directly, and these tests keep the
configuration honest wherever the tools happen to be available.
"""

import pathlib
import shutil
import subprocess
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[2]


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    proc = subprocess.run(
        ["ruff", "check", "src", "tests", "benchmarks"],
        cwd=ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_typed_island_clean():
    proc = subprocess.run(
        ["mypy"], cwd=ROOT, capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_hnslint_module_entrypoint_exits_zero():
    """python -m repro.analysis src/repro — the CI lint gate itself."""
    env = {"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin:/bin"}
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "src/repro"],
        cwd=ROOT,
        env=env,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 findings" in proc.stdout
