"""hnslint + sanitizer + determinism checker tests."""
