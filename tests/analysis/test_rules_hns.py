"""HNS001/HNS002/HNS003: one true positive and one clean pass each."""

import textwrap

from repro.analysis import lint_source
from repro.analysis.rules_hns import (
    Hns001CacheInsertTtl,
    Hns002WireMessageIdl,
    Hns003StatNameConvention,
    Hns004WireMessageFieldTypes,
)


def _lint(source, rule_cls, path="<string>"):
    return lint_source(textwrap.dedent(source), path=path, rules=[rule_cls()])


# ----------------------------------------------------------------------
# HNS001: cache inserts carry a TTL
# ----------------------------------------------------------------------
def test_hns001_flags_insert_without_ttl():
    findings = _lint(
        """
        def store(self, key, payload):
            self.cache.insert(key, payload, 1)
        """,
        Hns001CacheInsertTtl,
    )
    assert [f.rule for f in findings] == ["HNS001"]
    assert "ttl_ms" in findings[0].message


def test_hns001_flags_literal_non_positive_ttl():
    findings = _lint(
        """
        def store(self, key, payload):
            self.resolver_cache.insert(key, payload, 1, ttl_ms=0)
        """,
        Hns001CacheInsertTtl,
    )
    assert [f.rule for f in findings] == ["HNS001"]
    assert "non-positive" in findings[0].message


def test_hns001_clean_with_keyword_ttl():
    findings = _lint(
        """
        def store(self, key, payload, record):
            self.cache.insert(key, payload, 1, ttl_ms=record.ttl_ms)
        """,
        Hns001CacheInsertTtl,
    )
    assert findings == []


def test_hns001_clean_with_positional_ttl():
    # ResolverCache.insert(key, payload, record_count, ttl_ms)
    findings = _lint(
        """
        def store(self, key, payload):
            self.cache.insert(key, payload, 1, 30_000)
        """,
        Hns001CacheInsertTtl,
    )
    assert findings == []


def test_hns001_ignores_non_cache_receivers():
    findings = _lint(
        """
        def store(self, row):
            self.table.insert(0, row)
        """,
        Hns001CacheInsertTtl,
    )
    assert findings == []


# ----------------------------------------------------------------------
# HNS002: wire messages registered with the serializer
# ----------------------------------------------------------------------
_BAD_MESSAGE = """
    import dataclasses

    @dataclasses.dataclass
    class LookupRequest:
        name: str
"""

_GOOD_MESSAGE = """
    import dataclasses

    @dataclasses.dataclass
    class LookupRequest:
        name: str
        idl_type = "placeholder"
"""


def test_hns002_flags_unregistered_wire_message():
    findings = _lint(
        _BAD_MESSAGE, Hns002WireMessageIdl, path="src/repro/x/messages.py"
    )
    assert [f.rule for f in findings] == ["HNS002"]
    assert "'LookupRequest'" in findings[0].message


def test_hns002_clean_with_idl_type():
    findings = _lint(
        _GOOD_MESSAGE, Hns002WireMessageIdl, path="src/repro/x/messages.py"
    )
    assert findings == []


def test_hns002_only_applies_to_messages_modules():
    findings = _lint(_BAD_MESSAGE, Hns002WireMessageIdl, path="src/repro/x/other.py")
    assert findings == []


def test_hns002_ignores_non_wire_and_non_dataclass_classes():
    findings = _lint(
        """
        import dataclasses

        @dataclasses.dataclass
        class CacheEntry:
            payload: object

        class PlainRequest:
            pass
        """,
        Hns002WireMessageIdl,
        path="src/repro/x/messages.py",
    )
    assert findings == []


# ----------------------------------------------------------------------
# HNS003: dotted stats names
# ----------------------------------------------------------------------
def test_hns003_flags_unknown_subsystem_prefix():
    findings = _lint(
        """
        def record(self):
            self.env.stats.counter("fs.reads").increment()
        """,
        Hns003StatNameConvention,
    )
    assert [f.rule for f in findings] == ["HNS003"]
    assert "'fs'" in findings[0].message


def test_hns003_flags_missing_subsystem_prefix():
    findings = _lint(
        """
        def record(self):
            self.env.stats.counter("hits").increment()
        """,
        Hns003StatNameConvention,
    )
    assert [f.rule for f in findings] == ["HNS003"]
    assert "no subsystem prefix" in findings[0].message


def test_hns003_flags_mixed_case_segment():
    findings = _lint(
        """
        def record(self):
            self.env.stats.counter("cache.Hits").increment()
        """,
        Hns003StatNameConvention,
    )
    assert [f.rule for f in findings] == ["HNS003"]


def test_hns003_clean_literal_and_fstring_names():
    findings = _lint(
        """
        def record(self, host):
            self.env.stats.counter("cache.hits").increment()
            self.env.stats.counter(f"bind.replica.{host}.sent").increment()
            self.env.stats.timer("hrpc.call")
        """,
        Hns003StatNameConvention,
    )
    assert findings == []


def test_hns003_accepts_the_sim_kernel_families():
    # The kernel publishes its queue back-end counters under
    # sim.kernel.* (publish_kernel_stats), and the million-client
    # scenario records under sim.mclient.*.
    findings = _lint(
        """
        def publish(self):
            self.env.stats.counter("sim.kernel.wheel_rotations").increment()
            self.env.stats.counter("sim.kernel.fastpath_schedules").increment()
            self.env.stats.counter("sim.mclient.cache_hits").increment()
            self.env.stats.timer("sim.mclient.latency", streaming=True)
        """,
        Hns003StatNameConvention,
    )
    assert findings == []


def test_hns003_accepts_the_bind_update_prefix():
    # The write pipeline keeps its cross-server stats under
    # bind.update.* (batches, lease grants/expirations, notifies).
    findings = _lint(
        """
        def grant(self):
            self.env.stats.counter("bind.update.lease_grants").increment()
        """,
        Hns003StatNameConvention,
    )
    assert findings == []


def test_hns003_accepts_the_nsm_lease_prefix():
    # Client-side lease renewal counts under nsm.lease.*.
    findings = _lint(
        """
        def renewed(self):
            self.env.stats.counter("nsm.lease.renewals").increment()
        """,
        Hns003StatNameConvention,
    )
    assert findings == []


def test_hns003_accepts_the_obs_prefix():
    # The observability pipeline registers histograms per span name;
    # "obs" is a known subsystem (PR 5).
    findings = _lint(
        """
        def record(self, span_name, bounds):
            self.env.stats.histogram(f"obs.span.{span_name}", bounds)
        """,
        Hns003StatNameConvention,
    )
    assert findings == []


def test_hns003_accepts_the_harness_prefix():
    # Ablation-grid runners count their own workload events under
    # harness.<grid>.* (e.g. harness.fast_path.finds).
    findings = _lint(
        """
        def finish(self, env, count):
            env.stats.counter("harness.fast_path.finds").increment(count)
        """,
        Hns003StatNameConvention,
    )
    assert findings == []


def test_hns003_allows_hyphenated_server_names_in_bind_families():
    # bind.<server name>.<counter>: the server-name segment follows
    # host-naming rules, so "meta-bind" is legal there (and only there).
    findings = _lint(
        """
        def record(self):
            self.env.stats.counter("bind.meta-bind.queries").increment()
        """,
        Hns003StatNameConvention,
    )
    assert findings == []


def test_hns003_hyphen_outside_the_server_segment_still_flagged():
    findings = _lint(
        """
        def record(self):
            self.env.stats.counter("cache.hit-rate").increment()
            self.env.stats.counter("bind.primary.slow-queries").increment()
        """,
        Hns003StatNameConvention,
    )
    assert [f.rule for f in findings] == ["HNS003", "HNS003"]


def test_hns003_skips_dynamic_names_and_other_receivers():
    findings = _lint(
        """
        def record(self, name, registry):
            self.env.stats.counter(name).increment()
            registry.counter("Whatever.Goes")
        """,
        Hns003StatNameConvention,
    )
    assert findings == []


# ----------------------------------------------------------------------
# HNS004: wire-message field types
# ----------------------------------------------------------------------
def test_hns004_flags_unregistered_field_type():
    findings = _lint(
        """
        import dataclasses

        @dataclasses.dataclass
        class TransferRequest:
            zone: str
            payload: object
            idl_type = "placeholder"
        """,
        Hns004WireMessageFieldTypes,
        path="src/repro/bind/messages.py",
    )
    assert [f.rule for f in findings] == ["HNS004"]
    assert "TransferRequest.payload" in findings[0].message
    assert "unregistered type" in findings[0].message
    assert findings[0].subject == "payload"


def test_hns004_flags_server_side_class_in_container():
    findings = _lint(
        """
        import dataclasses

        @dataclasses.dataclass
        class SweepResponse:
            expired: typing.List[LeaseRecord]
            idl_type = "placeholder"
        """,
        Hns004WireMessageFieldTypes,
        path="src/repro/bind/messages.py",
    )
    assert [f.rule for f in findings] == ["HNS004"]
    assert findings[0].subject == "expired"


def test_hns004_clean_registered_and_nested_types():
    # Primitives, IDL record types, containers of those, other wire
    # messages from the same module, string annotations, and unions
    # are all registered shapes; idl_type / ClassVar / _-prefixed
    # attributes are not wire fields at all.
    findings = _lint(
        """
        import dataclasses
        import typing

        @dataclasses.dataclass
        class TransferQuestion:
            zone: DomainName
            serial: int
            idl_type = "placeholder"

        @dataclasses.dataclass
        class TransferResponse:
            question: TransferQuestion
            records: typing.List[ResourceRecord]
            deltas: "typing.Dict[str, ZoneDelta]"
            window: typing.Optional[float]
            flags: typing.Tuple[bool, bytes]
            retry_ms: "int | None"
            kind: typing.ClassVar[str] = "ixfr"
            _cached_size: object = None
            idl_type = "placeholder"
        """,
        Hns004WireMessageFieldTypes,
        path="src/repro/bind/messages.py",
    )
    assert findings == []


def test_hns004_only_applies_to_messages_modules():
    findings = _lint(
        """
        import dataclasses

        @dataclasses.dataclass
        class TransferRequest:
            payload: object
            idl_type = "placeholder"
        """,
        Hns004WireMessageFieldTypes,
        path="src/repro/bind/server.py",
    )
    assert findings == []


def test_hns004_ignores_non_wire_classes():
    # A module-internal helper dataclass without a wire suffix or an
    # idl_type is not a wire message; its fields are unconstrained.
    findings = _lint(
        """
        import dataclasses

        @dataclasses.dataclass
        class CacheSlot:
            payload: object
        """,
        Hns004WireMessageFieldTypes,
        path="src/repro/bind/messages.py",
    )
    assert findings == []


# ----------------------------------------------------------------------
# The broadcast/discovery tier: wire suffixes and stat families
# ----------------------------------------------------------------------
def test_hns002_covers_query_answer_and_beacon_suffixes():
    # The broadcast locator (NameQuery/NameAnswer) and the beacon tier
    # (PresenceBeacon) speak on the wire; HNS002 must see their naming
    # suffixes so unregistered messages in those modules are flagged.
    findings = _lint(
        """
        import dataclasses

        @dataclasses.dataclass
        class NameQuery:
            name: str

        @dataclasses.dataclass
        class NameAnswer:
            name: str

        @dataclasses.dataclass
        class PresenceBeacon:
            owner: str
        """,
        Hns002WireMessageIdl,
        path="src/repro/discovery/messages.py",
    )
    assert [f.rule for f in findings] == ["HNS002"] * 3


def test_hns004_covers_beacon_suffix_fields():
    findings = _lint(
        """
        import dataclasses

        @dataclasses.dataclass
        class PresenceBeacon:
            names: dict
            idl_type = "placeholder"
        """,
        Hns004WireMessageFieldTypes,
        path="src/repro/discovery/messages.py",
    )
    assert [f.rule for f in findings] == ["HNS004"]
    assert findings[0].subject == "names"


def test_hns003_accepts_broadcast_and_discovery_families():
    # broadcast.* mirrors the locator's examined/answered tallies as
    # env stats; discovery.* covers beacons, the passive view, watchdog
    # and TTL evictions (discovery.evict.<reason>), and the ad-hoc NSM.
    findings = _lint(
        """
        def record(self):
            self.env.stats.counter("broadcast.examined").increment()
            self.env.stats.counter("broadcast.answered").increment()
            self.env.stats.counter("discovery.beacons_sent").increment()
            self.env.stats.counter("discovery.evict.watchdog").increment()
            self.env.stats.counter("discovery.nsm_invalidations").increment()
        """,
        Hns003StatNameConvention,
    )
    assert findings == []
