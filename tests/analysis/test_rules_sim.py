"""SIM001/SIM002/SIM003: one true positive and one clean pass each."""

import textwrap

from repro.analysis import lint_source
from repro.analysis.rules_sim import (
    Sim001AmbientNondeterminism,
    Sim002BlockingCall,
    Sim003StaleReadAcrossYield,
)


def _lint(source, rule_cls):
    return lint_source(textwrap.dedent(source), rules=[rule_cls()])


# ----------------------------------------------------------------------
# SIM001: ambient nondeterminism
# ----------------------------------------------------------------------
def test_sim001_flags_time_time():
    findings = _lint(
        """
        import time

        def stamp():
            return time.time()
        """,
        Sim001AmbientNondeterminism,
    )
    assert [f.rule for f in findings] == ["SIM001"]
    assert "time.time()" in findings[0].message
    assert "env.now" in findings[0].message


def test_sim001_flags_from_import_and_alias():
    findings = _lint(
        """
        from time import monotonic
        import time as t
        from datetime import datetime

        def stamps():
            return monotonic(), t.time_ns(), datetime.now()
        """,
        Sim001AmbientNondeterminism,
    )
    assert [f.rule for f in findings] == ["SIM001"] * 3


def test_sim001_flags_ambient_randomness():
    findings = _lint(
        """
        import os
        import random
        import secrets
        import uuid

        def draw():
            return os.urandom(8), random.random(), secrets.token_hex(), uuid.uuid4()
        """,
        Sim001AmbientNondeterminism,
    )
    assert len(findings) == 4
    assert all(f.rule == "SIM001" for f in findings)


def test_sim001_flags_random_random_construction():
    findings = _lint(
        """
        import random

        def make_stream():
            return random.Random(42)
        """,
        Sim001AmbientNondeterminism,
    )
    assert [f.rule for f in findings] == ["SIM001"]
    assert "RngRegistry" in findings[0].message


def test_sim001_clean_simulated_time_and_rng():
    findings = _lint(
        """
        def sample(env):
            rng = env.rng.stream("latency.net")
            return env.now + rng.uniform(0.0, 1.0)
        """,
        Sim001AmbientNondeterminism,
    )
    assert findings == []


def test_sim001_unrelated_module_time_attribute_is_clean():
    # A *local* object that happens to have a .time() method is fine.
    findings = _lint(
        """
        def read(record):
            return record.time()
        """,
        Sim001AmbientNondeterminism,
    )
    assert findings == []


# ----------------------------------------------------------------------
# SIM002: blocking calls inside generator processes
# ----------------------------------------------------------------------
def test_sim002_flags_sleep_in_generator():
    findings = _lint(
        """
        import time

        def proc(env):
            time.sleep(1.0)
            yield env.timeout(5)
        """,
        Sim002BlockingCall,
    )
    assert [f.rule for f in findings] == ["SIM002"]
    assert "time.sleep()" in findings[0].message
    assert "'proc'" in findings[0].message


def test_sim002_flags_socket_and_open_in_generator():
    findings = _lint(
        """
        import socket

        def proc(env):
            conn = socket.create_connection(("host", 80))
            data = open("/etc/hosts").read()
            yield env.timeout(1)
            return conn, data
        """,
        Sim002BlockingCall,
    )
    assert sorted(f.rule for f in findings) == ["SIM002", "SIM002"]


def test_sim002_ignores_non_generator_functions():
    # time.sleep outside a process generator is SIM001-free and SIM002
    # only polices generators (harness code may legitimately sleep).
    findings = _lint(
        """
        import time

        def warmup():
            time.sleep(0.1)
        """,
        Sim002BlockingCall,
    )
    assert findings == []


def test_sim002_ignores_nested_non_generator_helper():
    # The nested def is not a generator; its body must not be attributed
    # to the enclosing generator.
    findings = _lint(
        """
        def proc(env):
            def helper():
                return input()
            yield env.timeout(1)
            return helper
        """,
        Sim002BlockingCall,
    )
    assert findings == []


def test_sim002_clean_simulated_waiting():
    findings = _lint(
        """
        def proc(env, transport):
            yield env.timeout(10)
            reply = yield from transport.request(b"ping")
            return reply
        """,
        Sim002BlockingCall,
    )
    assert findings == []


# ----------------------------------------------------------------------
# SIM003: stale reads across yields
# ----------------------------------------------------------------------
def test_sim003_flags_snapshot_used_after_yield():
    findings = _lint(
        """
        def resolve(self, env, key):
            entry = self.cache.probe(key)
            yield env.timeout(5)
            return entry.payload
        """,
        Sim003StaleReadAcrossYield,
    )
    assert [f.rule for f in findings] == ["SIM003"]
    assert "'entry'" in findings[0].message
    assert "self.cache.probe(...)" in findings[0].message


def test_sim003_flags_stateful_attribute_snapshot():
    findings = _lint(
        """
        def scan(self, env):
            table = self.zone.records
            yield env.timeout(1)
            return len(table)
        """,
        Sim003StaleReadAcrossYield,
    )
    assert [f.rule for f in findings] == ["SIM003"]


def test_sim003_clean_when_rebound_after_yield():
    findings = _lint(
        """
        def resolve(self, env, key):
            entry = self.cache.probe(key)
            yield env.timeout(5)
            entry = self.cache.probe(key)
            return entry.payload
        """,
        Sim003StaleReadAcrossYield,
    )
    assert findings == []


def test_sim003_clean_when_used_before_yield():
    findings = _lint(
        """
        def resolve(self, env, key):
            entry = self.cache.probe(key)
            payload = entry.payload
            yield env.timeout(5)
            return payload
        """,
        Sim003StaleReadAcrossYield,
    )
    assert findings == []


def test_sim003_tuple_unpack_taints_only_the_entry():
    # probe() returning (entry, age): only position 0 snapshots state.
    findings = _lint(
        """
        def resolve(self, env, key):
            entry, age = self.cache.probe(key)
            yield env.timeout(5)
            return age
        """,
        Sim003StaleReadAcrossYield,
    )
    assert findings == []


def test_sim003_yield_inside_branch_sequences_correctly():
    # The read at the top of the if-branch happens before the branch's
    # own yield; it must not be flagged.
    findings = _lint(
        """
        def resolve(self, env, key):
            entry = self.cache.probe(key)
            if entry is not None:
                payload = entry.payload
                yield env.timeout(5)
                return payload
            yield env.timeout(1)
        """,
        Sim003StaleReadAcrossYield,
    )
    assert findings == []


def test_sim003_reports_each_variable_once():
    findings = _lint(
        """
        def resolve(self, env, key):
            entry = self.cache.probe(key)
            yield env.timeout(5)
            first = entry.payload
            second = entry.payload
            return first, second
        """,
        Sim003StaleReadAcrossYield,
    )
    assert [f.rule for f in findings] == ["SIM003"]
