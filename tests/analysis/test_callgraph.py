"""The may-yield call graph: resolution, fixpoint, conservatism."""

import textwrap

from repro.analysis.callgraph import build_callgraph
from repro.analysis.core import ModuleSource


def _graph(**sources):
    modules = [
        ModuleSource(f"{name}.py", textwrap.dedent(text))
        for name, text in sources.items()
    ]
    return build_callgraph(modules)


def _info(graph, path, cls, name):
    info = graph.lookup(path, cls, name)
    assert info is not None, f"{path}:{cls}.{name} not indexed"
    return info


def test_direct_yield_is_may_yield():
    graph = _graph(
        m="""
        def ticker(env):
            yield env.timeout(1.0)
        """
    )
    assert _info(graph, "m.py", None, "ticker").may_yield


def test_transitive_delegation_propagates():
    graph = _graph(
        m="""
        def leaf(env):
            yield env.timeout(1.0)

        def middle(env):
            yield from leaf(env)

        def top(env):
            yield from middle(env)
        """
    )
    assert _info(graph, "m.py", None, "middle").may_yield
    assert _info(graph, "m.py", None, "top").may_yield


def test_pure_generator_chain_without_yield_stays_clean():
    # yield from over a resolved non-suspending callee: the delegation
    # produces values but never suspends on a kernel event... except a
    # generator always yields *something* if the leaf yields; here the
    # leaf has no yield at all, so nothing in the chain may suspend.
    graph = _graph(
        m="""
        def compute(x):
            return x + 1

        def runner(x):
            value = compute(x)
            return value
        """
    )
    assert not _info(graph, "m.py", None, "compute").may_yield
    assert not _info(graph, "m.py", None, "runner").may_yield


def test_self_method_resolution():
    graph = _graph(
        m="""
        class Server:
            def _flush(self, batch):
                yield self.env.timeout(1.0)

            def submit(self, batch):
                yield from self._flush(batch)

            def render(self):
                return "ok"
        """
    )
    assert _info(graph, "m.py", "Server", "submit").may_yield
    assert not _info(graph, "m.py", "Server", "render").may_yield


def test_cross_module_bare_call_falls_back_by_name():
    graph = _graph(
        a="""
        def helper(env):
            yield env.timeout(1.0)
        """,
        b="""
        def caller(env):
            yield from helper(env)
        """,
    )
    assert _info(graph, "b.py", None, "caller").may_yield


def test_same_module_definition_shadows_cross_module():
    # b.py defines its own non-yielding helper; the cross-module
    # yielding one must not leak into b's resolution.
    graph = _graph(
        a="""
        def helper(env):
            yield env.timeout(1.0)
        """,
        b="""
        def helper(items):
            yield from items

        def caller(items):
            yield from helper(items)
        """,
    )
    # b.helper delegates to an arbitrary iterable: conservative.
    assert _info(graph, "b.py", None, "caller").may_yield
    graph2 = _graph(
        a="""
        def helper(env):
            yield env.timeout(1.0)
        """,
        c="""
        def helper(x):
            return x

        def caller(x):
            yield from helper(x)
        """,
    )
    assert not _info(graph2, "c.py", None, "caller").may_yield


def test_unresolved_delegation_is_conservative():
    graph = _graph(
        m="""
        def caller(handlers, key):
            yield from handlers[key]()
        """
    )
    assert _info(graph, "m.py", None, "caller").may_yield
    assert graph.summary()["unresolved_delegations"] == 1


def test_delegation_cycle_without_yield_converges_clean():
    graph = _graph(
        m="""
        def ping(n):
            if n:
                yield from pong(n - 1)

        def pong(n):
            if n:
                yield from ping(n - 1)
        """
    )
    assert not _info(graph, "m.py", None, "ping").may_yield
    assert not _info(graph, "m.py", None, "pong").may_yield


def test_delegation_cycle_with_yield_converges_tainted():
    graph = _graph(
        m="""
        def ping(env, n):
            if n:
                yield from pong(env, n - 1)

        def pong(env, n):
            yield env.timeout(1.0)
            if n:
                yield from ping(env, n - 1)
        """
    )
    assert _info(graph, "m.py", None, "ping").may_yield
    assert _info(graph, "m.py", None, "pong").may_yield


def test_multi_candidate_dispatch_any_suspending_wins():
    # Two classes define .handle(); self.handle() from a third class
    # with no own definition falls back to by-name candidates — any
    # suspending one makes the call suspending.
    graph = _graph(
        m="""
        class Fast:
            def handle(self):
                return 1

        class Slow:
            def handle(self):
                yield self.env.timeout(1.0)

        class Front:
            def serve(self):
                yield from self.handle()
        """
    )
    assert _info(graph, "m.py", "Front", "serve").may_yield


def test_await_counts_as_bare_yield():
    graph = _graph(
        m="""
        async def fetch(client):
            return await client.get()
        """
    )
    assert _info(graph, "m.py", None, "fetch").may_yield


def test_summary_counters():
    graph = _graph(
        m="""
        def leaf(env):
            yield env.timeout(1.0)

        def top(env):
            yield from leaf(env)
        """
    )
    summary = graph.summary()
    assert summary["functions"] == 2
    assert summary["generators"] == 2
    assert summary["may_yield"] == 2
    assert summary["delegation_edges"] == 1
    assert summary["unresolved_delegations"] == 0
