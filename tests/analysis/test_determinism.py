"""Determinism checker: clean scenarios pass, planted regressions fail.

The deliberately-planted regressions live here (in test code, which
hnslint does not scan): a ``time.time()`` call inserted into the
``sim/latency.py`` source must trip SIM001, and an ambient-state leak
into ``ConstantLatency.sample`` at runtime must trip the double-run
digest comparison.
"""

import itertools
import pathlib
import time

import pytest

from repro.analysis import check_scenario, lint_source
from repro.analysis.determinism import check_all, run_digest, run_lines
from repro.sim.latency import ConstantLatency
from repro.workloads.scenarios import SCENARIOS, iter_scenarios

ROOT = pathlib.Path(__file__).resolve().parents[2]
LATENCY_PY = ROOT / "src" / "repro" / "sim" / "latency.py"


def test_scenario_registry_is_populated_and_sorted():
    names = [name for name, _ in iter_scenarios()]
    assert names == sorted(names)
    assert "fast_path_coalescing" in names
    assert "zipf_workload" in names
    assert len(names) >= 8


def test_every_registered_scenario_is_deterministic():
    checks = check_all(seed=0)
    failed = [c.scenario for c in checks if not c.ok]
    assert failed == []
    for check in checks:
        assert check.digest_a == check.digest_b
        assert check.events_a == check.events_b > 0


def test_determinism_holds_across_seeds_but_seeds_differ():
    builder = SCENARIOS["zipf_workload"]
    check_a = check_scenario("zipf_workload", builder, seed=1)
    check_b = check_scenario("zipf_workload", builder, seed=2)
    assert check_a.ok and check_b.ok
    # different seeds take different trajectories (otherwise the digest
    # is insensitive and the whole check is vacuous)
    assert check_a.digest_a != check_b.digest_a


def test_run_lines_cover_trace_counters_and_clock():
    env = SCENARIOS["replica_scheduling"](0)
    lines = run_lines(env)
    assert lines[-1].startswith("clock|")
    assert any(line.startswith("counter|") for line in lines)
    assert len(lines) > len(env.trace.records)
    assert run_digest(env) == run_digest(env)


def test_check_all_rejects_unknown_scenarios():
    with pytest.raises(KeyError, match="no_such_scenario"):
        check_all(names=["no_such_scenario"])


# ----------------------------------------------------------------------
# Planted regressions
# ----------------------------------------------------------------------
def test_planting_time_time_in_latency_module_fails_lint():
    """Acceptance check: a wall-clock read in sim/latency.py trips SIM001."""
    source = LATENCY_PY.read_text(encoding="utf-8")
    assert lint_source(source, path=str(LATENCY_PY)) == []

    planted = source.replace(
        "return self.base_ms + self.per_byte_ms * size_bytes",
        "return self.base_ms + self.per_byte_ms * size_bytes + time.time()",
        1,
    ).replace("import bisect", "import bisect\nimport time", 1)
    assert planted != source  # the anchor lines still exist

    findings = lint_source(planted, path=str(LATENCY_PY))
    assert [f.rule for f in findings] == ["SIM001"]
    assert "time.time()" in findings[0].message


def test_runtime_clock_leak_is_caught_by_double_run(monkeypatch):
    """An ambient-state leak in ConstantLatency.sample diverges the digest."""
    ticks = itertools.count(1)
    original = ConstantLatency.sample

    def leaky_sample(self, rng, size_bytes=0):
        # The wall clock plus a cross-run counter: strictly increasing
        # between the checker's two runs, so the leak is guaranteed to
        # surface regardless of timer resolution.
        skew = (time.time_ns() % 1000) * 1e-9 + next(ticks) * 1e-3
        return original(self, rng, size_bytes) + skew

    monkeypatch.setattr(ConstantLatency, "sample", leaky_sample)
    check = check_scenario(
        "fast_path_coalescing", SCENARIOS["fast_path_coalescing"], seed=0
    )
    assert not check.ok
    assert check.digest_a != check.digest_b
    assert check.first_divergence


def test_clean_rerun_after_the_leak_passes_again():
    check = check_scenario(
        "fast_path_coalescing", SCENARIOS["fast_path_coalescing"], seed=0
    )
    assert check.ok
