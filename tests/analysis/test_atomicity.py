"""SIM004/SIM005: yield-gap fixture pairs from the write path's shapes.

Every true-positive fixture models a real PR 6 write-path pattern —
the ``_OpenBatch`` flush, the NOTIFY debounce, the lease sweeper — and
each has a clean twin spelling the race-free idiom, so the rules are
pinned from both sides.
"""

import textwrap

from repro.analysis import lint_source
from repro.analysis.atomicity import (
    Sim004CheckThenActAcrossGap,
    Sim005AwaitGapCapture,
)


def _lint(source, rule_cls):
    return lint_source(textwrap.dedent(source), rules=[rule_cls()])


# ----------------------------------------------------------------------
# SIM004: check-then-act across a may-yield gap
# ----------------------------------------------------------------------
def test_sim004_flags_open_batch_deref_after_helper_gap():
    # The _OpenBatch flush shape: None-check, suspend into a helper,
    # then dereference without re-checking.
    findings = _lint(
        """
        class BatchWriter:
            def _flush(self):
                yield self.env.timeout(self.linger_ms)

            def submit(self, op):
                if self._open is not None:
                    yield from self._flush()
                    self._open.ops.append(op)
        """,
        Sim004CheckThenActAcrossGap,
    )
    assert [f.rule for f in findings] == ["SIM004"]
    assert "self._open" in findings[0].message
    assert "None-checked" in findings[0].message
    assert findings[0].subject == "_open"


def test_sim004_flags_notify_pop_after_membership_gap():
    # The NOTIFY-debounce shape: membership test, suspend while the
    # notification is on the wire, then pop the tested key.
    findings = _lint(
        """
        class Notifier:
            def _send_notify(self, zone):
                yield self.env.timeout(self.debounce_ms)

            def notify(self, zone):
                if zone in self._pending:
                    yield from self._send_notify(zone)
                    self._pending.pop(zone)
        """,
        Sim004CheckThenActAcrossGap,
    )
    assert [f.rule for f in findings] == ["SIM004"]
    assert "membership test" in findings[0].message
    assert findings[0].subject == "_pending"


def test_sim004_flags_transitive_helper_gap():
    # The gap is two calls deep: submit -> _flush -> _write; only the
    # call graph sees it.
    findings = _lint(
        """
        class Journal:
            def _write(self):
                yield self.env.timeout(2.0)

            def _flush(self):
                yield from self._write()

            def append(self, op):
                if self._segment is not None:
                    yield from self._flush()
                    return self._segment.tail
                yield from self._write()
        """,
        Sim004CheckThenActAcrossGap,
    )
    assert [f.rule for f in findings] == ["SIM004"]
    assert findings[0].subject == "_segment"


def test_sim004_clean_when_rechecked_after_gap():
    findings = _lint(
        """
        class BatchWriter:
            def _flush(self):
                yield self.env.timeout(self.linger_ms)

            def submit(self, op):
                if self._open is not None:
                    yield from self._flush()
                    if self._open is not None:
                        self._open.ops.append(op)
        """,
        Sim004CheckThenActAcrossGap,
    )
    assert findings == []


def test_sim004_clean_when_act_precedes_gap():
    findings = _lint(
        """
        class Notifier:
            def _send_notify(self, zone):
                yield self.env.timeout(self.debounce_ms)

            def notify(self, zone):
                if zone in self._pending:
                    self._pending.pop(zone)
                    yield from self._send_notify(zone)
        """,
        Sim004CheckThenActAcrossGap,
    )
    assert findings == []


def test_sim004_clean_race_safe_pop_with_default():
    findings = _lint(
        """
        class Notifier:
            def _send_notify(self, zone):
                yield self.env.timeout(self.debounce_ms)

            def notify(self, zone):
                if zone in self._pending:
                    yield from self._send_notify(zone)
                    self._pending.pop(zone, None)
        """,
        Sim004CheckThenActAcrossGap,
    )
    assert findings == []


def test_sim004_clean_when_helper_cannot_suspend():
    # Interprocedural precision: the delegation resolves to a helper
    # with no yield anywhere, so the check never crosses a gap.
    findings = _lint(
        """
        class BatchWriter:
            def _keys(self):
                return list(self._open.ops)

            def submit(self, op):
                if self._open is not None:
                    yield from self._keys()
                    self._open.ops.append(op)
        """,
        Sim004CheckThenActAcrossGap,
    )
    assert findings == []


def test_sim004_clean_truthy_sweeper_guard():
    # The lease sweeper's correct idiom: a truthiness guard re-read
    # every loop iteration, popping under the guard.  Deliberately
    # untracked.
    findings = _lint(
        """
        class LeaseTable:
            def _sweep(self):
                while self._leases:
                    name, expiry = self._leases.popitem()
                    yield self.env.timeout(1.0)
                    self.expired.append(name)
        """,
        Sim004CheckThenActAcrossGap,
    )
    assert findings == []


def test_sim004_rebind_supersedes_stale_check():
    findings = _lint(
        """
        class BatchWriter:
            def _flush(self):
                yield self.env.timeout(self.linger_ms)

            def submit(self, op):
                if self._open is None:
                    yield from self._flush()
                    self._open = self.make_batch()
                    self._open.ops.append(op)
        """,
        Sim004CheckThenActAcrossGap,
    )
    assert findings == []


# ----------------------------------------------------------------------
# SIM005: await-gap captures
# ----------------------------------------------------------------------
def test_sim005_flags_serial_captured_across_fsync():
    findings = _lint(
        """
        class Journal:
            def _fsync(self):
                yield self.env.timeout(self.fsync_ms)

            def append(self, delta):
                serial = self._serial
                yield from self._fsync()
                return serial + 1
        """,
        Sim005AwaitGapCapture,
    )
    assert [f.rule for f in findings] == ["SIM005"]
    assert "self._serial" in findings[0].message
    assert findings[0].subject == "_serial"


def test_sim005_flags_lease_element_captured_across_gap():
    findings = _lint(
        """
        class LeaseTable:
            def _persist(self):
                yield self.env.timeout(1.0)

            def renew(self, name, extend_ms):
                expiry = self._leases[name]
                yield from self._persist()
                self._leases[name] = expiry + extend_ms
        """,
        Sim005AwaitGapCapture,
    )
    assert [f.rule for f in findings] == ["SIM005"]
    assert "self._leases[...]" in findings[0].message
    assert findings[0].subject == "_leases"


def test_sim005_clean_when_reread_after_gap():
    findings = _lint(
        """
        class Journal:
            def _fsync(self):
                yield self.env.timeout(self.fsync_ms)

            def append(self, delta):
                serial = self._serial
                self.stage(serial, delta)
                yield from self._fsync()
                serial = self._serial
                return serial + 1
        """,
        Sim005AwaitGapCapture,
    )
    assert findings == []


def test_sim005_clean_when_use_is_in_the_suspending_statement():
    # The capture rides *into* the gap: arguments are evaluated before
    # the suspension, so this is race-free.
    findings = _lint(
        """
        class Journal:
            def _record(self, serial):
                yield self.env.timeout(1.0)

            def append(self, delta):
                serial = self._serial
                yield from self._record(serial)
                return True
        """,
        Sim005AwaitGapCapture,
    )
    assert findings == []


def test_sim005_clean_public_attribute_capture():
    # Public attributes are API surface, not the private mutable state
    # this rule patrols.
    findings = _lint(
        """
        class Journal:
            def _fsync(self):
                yield self.env.timeout(1.0)

            def append(self, delta):
                limit = self.capacity
                yield from self._fsync()
                return limit
        """,
        Sim005AwaitGapCapture,
    )
    assert findings == []


def test_sim005_clean_when_helper_cannot_suspend():
    findings = _lint(
        """
        class Journal:
            def _digest(self):
                return sum(self._entries_sizes)

            def append(self, delta):
                serial = self._serial
                yield from self.walker()
                return serial

            def walker(self):
                yield from self._digest()
        """,
        Sim005AwaitGapCapture,
    )
    # walker delegates to a non-generator helper, so append's
    # yield from walker() never suspends either.
    assert findings == []


def test_sim003_and_sim005_partition_the_namespace():
    # `entries` is SIM003's stateful name; SIM005 must not double-report
    # the same capture.
    findings = _lint(
        """
        class Cache:
            def _cost(self):
                yield self.env.timeout(1.0)

            def read(self, key):
                snapshot = self.entries
                yield from self._cost()
                return snapshot[key]
        """,
        Sim005AwaitGapCapture,
    )
    assert findings == []
