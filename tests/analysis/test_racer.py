"""hnsracer: perturbation, confirmation, determinism, round-trip."""

import json
import textwrap

from repro.analysis.determinism import run_digest
from repro.analysis.perturb import derive_seed, monitored, perturbed
from repro.analysis.racer import (
    CONFIRMED,
    UNCONFIRMED,
    RacerReport,
    race_scenario,
    render_racer_json,
    render_racer_text,
    run_racer,
)
from repro.analysis.sanitizer import InterleavingSanitizer
from repro.sim import Environment

#: A lease-renewal race SIM005 finds statically (subject: _leases).
RACY_SOURCE = """\
class LeaseTable:
    def _persist(self):
        yield self.env.timeout(1.0)

    def renew(self, name, extend_ms):
        expiry = self._leases[name]
        yield from self._persist()
        self._leases[name] = expiry + extend_ms
"""

#: The clean twin: re-read after the gap.
CLEAN_SOURCE = """\
class LeaseTable:
    def _persist(self):
        yield self.env.timeout(1.0)

    def renew(self, name, extend_ms):
        expiry = self._leases[name]
        self.stage(name, expiry)
        yield from self._persist()
        expiry = self._leases[name]
        self._leases[name] = expiry + extend_ms
"""


def planted_race_builder(seed):
    """Two unsynchronized processes touching a watched lease table.

    The watch label is the shared attribute's name — the convention the
    racer uses to match hazards against static finding subjects.
    """
    env = Environment(seed=seed)
    env.trace.enabled = True
    table = {"printer": 100}
    if isinstance(env.monitor, InterleavingSanitizer):
        table = env.monitor.watch(table, "_leases")

    def renewer():
        yield env.timeout(5)
        table["printer"] = 200
        env.trace.emit("test", "renewed")

    def sweeper():
        yield env.timeout(5)
        _ = table["printer"]
        env.trace.emit("test", "swept")

    env.process(renewer(), name="renewer")
    env.process(sweeper(), name="sweeper")
    env.run()
    return env


def synchronized_builder(seed):
    """The same accesses, ordered through an event: no hazard."""
    env = Environment(seed=seed)
    env.trace.enabled = True
    table = {"printer": 100}
    if isinstance(env.monitor, InterleavingSanitizer):
        table = env.monitor.watch(table, "_leases")
    gate = env.event()

    def renewer():
        yield env.timeout(5)
        table["printer"] = 200
        gate.succeed(None)

    def sweeper():
        yield gate
        _ = table["printer"]

    env.process(renewer(), name="renewer")
    env.process(sweeper(), name="sweeper")
    env.run()
    return env


def cohort_builder(seed):
    """Eight processes sharing one timestamp: pure tie-break order."""
    env = Environment(seed=seed)
    env.trace.enabled = True

    def proc(tag):
        yield env.timeout(10)
        env.trace.emit("test", f"ran {tag}")

    for tag in "abcdefgh":
        env.process(proc(tag), name=tag)
    env.run()
    return env


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return str(path)


# ----------------------------------------------------------------------
# Perturbation mechanics
# ----------------------------------------------------------------------
def test_perturbation_disabled_is_digest_identical():
    plain = run_digest(cohort_builder(0))
    with perturbed(None):
        off = run_digest(cohort_builder(0))
    assert plain == off


def test_perturbation_shuffles_same_timestamp_cohort():
    plain = run_digest(cohort_builder(0))
    with perturbed(derive_seed(0, 0)):
        shuffled = run_digest(cohort_builder(0))
    assert plain != shuffled


def test_fixed_perturbation_seed_is_deterministic():
    seed = derive_seed(0, 1)
    with perturbed(seed):
        first = run_digest(cohort_builder(0))
    with perturbed(seed):
        second = run_digest(cohort_builder(0))
    assert first == second


def test_distinct_seeds_give_distinct_schedules():
    digests = set()
    for index in range(3):
        with perturbed(derive_seed(0, index)):
            digests.add(run_digest(cohort_builder(0)))
    assert len(digests) == 3


def test_sanitizer_attachment_is_digest_passive():
    plain = run_digest(planted_race_builder(0))
    with monitored(lambda env: InterleavingSanitizer(env)):
        watched = run_digest(planted_race_builder(0))
    assert plain == watched


def test_derive_seed_is_stable_and_distinct():
    assert derive_seed(0, 0) == derive_seed(0, 0)
    assert derive_seed(0, 0) != derive_seed(0, 1)
    assert derive_seed(0, 0) != derive_seed(1, 0)


# ----------------------------------------------------------------------
# Scenario racing
# ----------------------------------------------------------------------
def test_race_scenario_reports_hazard_and_ok():
    race, hazards = race_scenario("planted", planted_race_builder, seed=0)
    assert race.ok
    assert race.hazard_count == len(hazards) >= 1
    assert any(h.label == "_leases" for h in hazards)


def test_race_scenario_synchronized_is_hazard_free():
    race, hazards = race_scenario("sync", synchronized_builder, seed=0)
    assert race.ok
    assert hazards == []


def test_cohort_scenario_is_perturbation_effective():
    race, _ = race_scenario("cohort", cohort_builder, seed=0)
    assert race.ok
    assert race.perturbation_effective


# ----------------------------------------------------------------------
# The full racer: confirmation and gating
# ----------------------------------------------------------------------
def test_planted_race_is_confirmed(tmp_path):
    path = _write(tmp_path, "leases.py", RACY_SOURCE)
    report = run_racer(
        [path], scenarios={"planted": planted_race_builder}, seed=0
    )
    assert len(report.findings) == 1
    racer_finding = report.findings[0]
    assert racer_finding.finding.rule == "SIM005"
    assert racer_finding.status == CONFIRMED
    assert racer_finding.witnesses
    assert "_leases" in racer_finding.witnesses[0]
    assert not report.ok  # findings gate the run, confirmed or not
    text = render_racer_text(report)
    assert "[CONFIRMED]" in text


def test_clean_variant_has_zero_findings(tmp_path):
    path = _write(tmp_path, "leases.py", CLEAN_SOURCE)
    report = run_racer(
        [path], scenarios={"planted": planted_race_builder}, seed=0
    )
    assert report.findings == []
    assert report.ok


def test_static_finding_without_witness_is_unconfirmed(tmp_path):
    path = _write(tmp_path, "leases.py", RACY_SOURCE)
    report = run_racer(
        [path], scenarios={"sync": synchronized_builder}, seed=0
    )
    assert len(report.findings) == 1
    assert report.findings[0].status == UNCONFIRMED
    assert report.findings[0].witnesses == ()


def test_run_racer_rejects_unknown_scenario(tmp_path):
    import pytest

    path = _write(tmp_path, "leases.py", CLEAN_SOURCE)
    with pytest.raises(KeyError):
        run_racer(
            [path],
            scenario_names=["nope"],
            scenarios={"planted": planted_race_builder},
        )


def test_racer_report_json_round_trip(tmp_path):
    path = _write(tmp_path, "leases.py", RACY_SOURCE)
    report = run_racer(
        [path],
        scenarios={
            "planted": planted_race_builder,
            "cohort": cohort_builder,
        },
        seed=3,
        perturb_runs=3,
    )
    payload = json.loads(render_racer_json(report))
    assert payload["version"] == 1
    assert payload["tool"] == "hnsracer"
    restored = RacerReport.from_json(payload)
    assert restored.to_json() == report.to_json()
    assert restored.ok == report.ok
    assert [s.perturb_seeds for s in restored.scenarios] == [
        s.perturb_seeds for s in report.scenarios
    ]


def test_racer_is_deterministic_across_runs(tmp_path):
    path = _write(tmp_path, "leases.py", RACY_SOURCE)
    kwargs = dict(
        scenarios={"planted": planted_race_builder}, seed=7, perturb_runs=2
    )
    first = run_racer([path], **kwargs)
    second = run_racer([path], **kwargs)
    assert first.to_json() == second.to_json()
