"""Suppressions, the baseline file, reporters, and CLI exit codes."""

import json
import textwrap

import pytest

from repro.analysis import lint_source, render_json, render_text
from repro.analysis.baseline import (
    Baseline,
    BaselineError,
    Suppression,
    _parse_toml_subset,
)
from repro.analysis.core import Finding, LintResult, lint_paths
from repro.analysis.__main__ import run

_BAD = textwrap.dedent(
    """
    import time

    def stamp():
        return time.time()
    """
)

_CLEAN = textwrap.dedent(
    """
    def stamp(env):
        return env.now
    """
)


# ----------------------------------------------------------------------
# Inline suppressions
# ----------------------------------------------------------------------
def test_inline_suppression_same_line():
    src = _BAD.replace("time.time()", "time.time()  # hnslint: disable=SIM001")
    assert lint_source(src) == []


def test_inline_suppression_comment_line_above():
    src = textwrap.dedent(
        """
        import time

        def stamp():
            # hnslint: disable=SIM001
            return time.time()
        """
    )
    assert lint_source(src) == []


def test_inline_suppression_without_codes_suppresses_all():
    src = _BAD.replace("time.time()", "time.time()  # hnslint: disable")
    assert lint_source(src) == []


def test_inline_suppression_wrong_code_does_not_apply():
    src = _BAD.replace("time.time()", "time.time()  # hnslint: disable=SIM002")
    assert [f.rule for f in lint_source(src)] == ["SIM001"]


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
_BASELINE_TEXT = """
# reviewed exceptions
[[suppression]]
rule = "SIM001"
path = "src/repro/sim/rng.py"
contains = "random.Random"
justification = "the one sanctioned wrapper"

[[suppression]]
rule = "SIM003"
path = "resolver.py"  # suffix match
justification = "entry captured by value"
"""


def _finding(rule, path, snippet):
    return Finding(
        rule=rule, path=path, line=1, col=0, message="m", snippet=snippet
    )


def test_baseline_structural_matching():
    baseline = Baseline.loads(_BASELINE_TEXT)
    assert len(baseline) == 2
    assert baseline.matches(
        _finding("SIM001", "src/repro/sim/rng.py", "x = random.Random(seed)")
    )
    # wrong snippet -> contains filter rejects
    assert not baseline.matches(
        _finding("SIM001", "src/repro/sim/rng.py", "x = time.time()")
    )
    # suffix path match, no contains filter
    assert baseline.matches(
        _finding("SIM003", "src/repro/bind/resolver.py", "anything")
    )
    # wrong rule
    assert not baseline.matches(
        _finding("SIM002", "src/repro/bind/resolver.py", "anything")
    )


def test_baseline_fallback_parser_agrees_with_tomllib():
    data = _parse_toml_subset(_BASELINE_TEXT)
    assert [entry["rule"] for entry in data["suppression"]] == [
        "SIM001",
        "SIM003",
    ]
    assert data["suppression"][1]["path"] == "resolver.py"
    try:
        import tomllib
    except ModuleNotFoundError:
        return
    assert tomllib.loads(_BASELINE_TEXT)["suppression"] == data["suppression"]


def test_baseline_requires_justification():
    with pytest.raises(BaselineError, match="missing key 'justification'"):
        Baseline.loads('[[suppression]]\nrule = "SIM001"\npath = "x.py"\n')
    with pytest.raises(BaselineError, match="empty justification"):
        Baseline.loads(
            '[[suppression]]\nrule = "SIM001"\npath = "x.py"\n'
            'justification = "  "\n'
        )


def test_baseline_fallback_rejects_non_string_values():
    with pytest.raises(BaselineError, match="only basic strings"):
        _parse_toml_subset('[[suppression]]\nrule = 3\n')


def test_repo_baseline_loads_and_every_entry_is_justified(tmp_path):
    import pathlib

    root = pathlib.Path(__file__).resolve().parents[2]
    baseline = Baseline.load(root / "hnslint-baseline.toml")
    assert len(baseline) > 0
    for suppression in baseline.suppressions:
        assert suppression.justification.strip()


# ----------------------------------------------------------------------
# lint_paths + baseline
# ----------------------------------------------------------------------
def test_lint_paths_counts_baselined_findings(tmp_path):
    bad = tmp_path / "clocky.py"
    bad.write_text(_BAD, encoding="utf-8")
    clean = tmp_path / "clean.py"
    clean.write_text(_CLEAN, encoding="utf-8")

    unbaselined = lint_paths([tmp_path])
    assert unbaselined.files_scanned == 2
    assert [f.rule for f in unbaselined.findings] == ["SIM001"]
    assert not unbaselined.ok

    baseline = Baseline(
        [Suppression(rule="SIM001", path="clocky.py", justification="test")]
    )
    baselined = lint_paths([tmp_path], baseline=baseline)
    assert baselined.ok
    assert baselined.baselined == 1


def test_lint_paths_records_parse_errors(tmp_path):
    (tmp_path / "broken.py").write_text("def f(:\n", encoding="utf-8")
    result = lint_paths([tmp_path])
    assert not result.ok
    assert len(result.parse_errors) == 1


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
def test_render_text_summary_and_finding_lines(tmp_path):
    bad = tmp_path / "clocky.py"
    bad.write_text(_BAD, encoding="utf-8")
    result = lint_paths([bad])
    text = render_text(result)
    assert "clocky.py:5:12: SIM001" in text
    assert "hnslint: 1 files scanned, 1 findings (SIM001: 1)" in text


def test_render_json_is_stable_and_versioned(tmp_path):
    bad = tmp_path / "clocky.py"
    bad.write_text(_BAD, encoding="utf-8")
    result = lint_paths([bad])
    payload = json.loads(render_json(result))
    assert payload["version"] == 2
    assert payload["tool"] == "hnslint"
    assert payload["ok"] is False
    assert payload["counts"] == {"SIM001": 1}
    finding = payload["findings"][0]
    assert finding["rule"] == "SIM001"
    assert finding["line"] == 5
    # stable: same input, same output
    assert render_json(result) == render_json(result)


def test_render_json_ok_ands_determinism():
    from repro.analysis.determinism import ScenarioCheck

    clean = LintResult(findings=[], files_scanned=1)
    bad_check = ScenarioCheck(
        scenario="s", seed=0, ok=False, digest_a="a", digest_b="b",
        events_a=1, events_b=1, first_divergence="line 0",
    )
    payload = json.loads(render_json(clean, [bad_check]))
    assert payload["ok"] is False
    assert payload["determinism"][0]["first_divergence"] == "line 0"


# ----------------------------------------------------------------------
# CLI exit codes
# ----------------------------------------------------------------------
def test_cli_exits_zero_on_clean_file(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text(_CLEAN, encoding="utf-8")
    assert run([str(clean), "--no-baseline"]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_cli_exits_nonzero_on_finding(tmp_path, capsys):
    bad = tmp_path / "clocky.py"
    bad.write_text(_BAD, encoding="utf-8")
    assert run([str(bad), "--no-baseline"]) == 1
    assert "SIM001" in capsys.readouterr().out


def test_cli_json_format(tmp_path, capsys):
    bad = tmp_path / "clocky.py"
    bad.write_text(_BAD, encoding="utf-8")
    assert run([str(bad), "--no-baseline", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"] == {"SIM001": 1}


def test_cli_list_rules(capsys):
    assert run(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("SIM001", "SIM002", "SIM003", "HNS001", "HNS002", "HNS003"):
        assert code in out


def test_repo_tree_is_lint_clean_under_checked_in_baseline(capsys):
    """The acceptance gate itself: src/repro lints clean with the baseline."""
    import pathlib

    root = pathlib.Path(__file__).resolve().parents[2]
    exit_code = run(
        [
            str(root / "src" / "repro"),
            "--baseline",
            str(root / "hnslint-baseline.toml"),
        ]
    )
    assert exit_code == 0, capsys.readouterr().out


# ----------------------------------------------------------------------
# Stale suppressions and --check-baseline
# ----------------------------------------------------------------------
def test_lint_paths_reports_stale_suppressions(tmp_path):
    (tmp_path / "clocky.py").write_text(_BAD, encoding="utf-8")
    baseline = Baseline(
        [
            Suppression(rule="SIM001", path="clocky.py", justification="live"),
            Suppression(
                rule="HNS001",
                path="deleted_module.py",
                contains="cache.insert",
                justification="the offender was deleted two PRs ago",
            ),
        ]
    )
    result = lint_paths([tmp_path], baseline=baseline)
    assert result.baselined == 1
    assert result.stale_suppressions == [
        'HNS001 path="deleted_module.py" contains="cache.insert"'
    ]
    # Stale entries are report content, not findings: ok stays true.
    assert result.ok
    assert "stale baseline suppression: HNS001" in render_text(result)
    assert json.loads(render_json(result))["stale_suppressions"] == [
        'HNS001 path="deleted_module.py" contains="cache.insert"'
    ]


def test_cli_check_baseline_fails_on_stale_entry(tmp_path, capsys):
    (tmp_path / "clean.py").write_text(_CLEAN, encoding="utf-8")
    baseline_file = tmp_path / "baseline.toml"
    baseline_file.write_text(
        '[[suppression]]\nrule = "SIM001"\npath = "gone.py"\n'
        'justification = "module deleted"\n',
        encoding="utf-8",
    )
    args = [str(tmp_path), "--baseline", str(baseline_file)]
    # Without the flag the stale entry is report-only...
    assert run(args) == 0
    capsys.readouterr()
    # ...with it, the gate fails until the entry is pruned.
    assert run(args + ["--check-baseline"]) == 1
    assert "stale baseline suppression" in capsys.readouterr().out


# ----------------------------------------------------------------------
# LINT001: unused-pragma meta-findings
# ----------------------------------------------------------------------
def test_lint001_flags_fully_unused_pragma():
    findings = lint_source(
        "x = 1  # hnslint: disable\n", check_pragmas=True
    )
    assert [f.rule for f in findings] == ["LINT001"]
    assert "nothing on this line" in findings[0].message


def test_lint001_flags_dead_codes_individually():
    src = _BAD.replace(
        "time.time()", "time.time()  # hnslint: disable=SIM001, HNS001"
    )
    findings = lint_source(src, check_pragmas=True)
    assert [f.rule for f in findings] == ["LINT001"]
    assert "HNS001" in findings[0].message
    assert "SIM001" not in findings[0].message  # SIM001 earned its keep


def test_lint001_quiet_when_pragma_is_used():
    src = _BAD.replace("time.time()", "time.time()  # hnslint: disable=SIM001")
    assert lint_source(src, check_pragmas=True) == []


def test_lint001_cannot_be_inline_suppressed():
    # A pragma cannot vouch for itself: disabling LINT001 on the same
    # line leaves the original pragma just as unused.
    findings = lint_source(
        "x = 1  # hnslint: disable=LINT001\n", check_pragmas=True
    )
    assert [f.rule for f in findings] == ["LINT001"]


def test_lint001_off_by_default_in_lint_source():
    assert lint_source("x = 1  # hnslint: disable\n") == []


def test_lint001_on_by_default_in_lint_paths(tmp_path):
    (tmp_path / "m.py").write_text(
        "x = 1  # hnslint: disable\n", encoding="utf-8"
    )
    result = lint_paths([tmp_path])
    assert [f.rule for f in result.findings] == ["LINT001"]
    quiet = lint_paths([tmp_path], check_pragmas=False)
    assert quiet.findings == []


def test_docstring_mentioning_pragma_syntax_is_not_a_pragma():
    src = '"""Docs: write `# hnslint: disable=SIM001` to suppress."""\n'
    assert lint_source(src, check_pragmas=True) == []


# ----------------------------------------------------------------------
# Finding subjects
# ----------------------------------------------------------------------
def test_finding_subject_round_trips_through_json():
    finding = Finding(
        rule="SIM005", path="m.py", line=3, col=9,
        message="m", snippet="expiry = self._leases[name]",
        subject="_leases",
    )
    payload = finding.to_json()
    assert payload["subject"] == "_leases"
    assert Finding.from_json(payload) == finding
    # v1 payloads without the key still load.
    del payload["subject"]
    assert Finding.from_json(payload).subject == ""
