"""Suppressions, the baseline file, reporters, and CLI exit codes."""

import json
import textwrap

import pytest

from repro.analysis import lint_source, render_json, render_text
from repro.analysis.baseline import (
    Baseline,
    BaselineError,
    Suppression,
    _parse_toml_subset,
)
from repro.analysis.core import Finding, LintResult, lint_paths
from repro.analysis.__main__ import run

_BAD = textwrap.dedent(
    """
    import time

    def stamp():
        return time.time()
    """
)

_CLEAN = textwrap.dedent(
    """
    def stamp(env):
        return env.now
    """
)


# ----------------------------------------------------------------------
# Inline suppressions
# ----------------------------------------------------------------------
def test_inline_suppression_same_line():
    src = _BAD.replace("time.time()", "time.time()  # hnslint: disable=SIM001")
    assert lint_source(src) == []


def test_inline_suppression_comment_line_above():
    src = textwrap.dedent(
        """
        import time

        def stamp():
            # hnslint: disable=SIM001
            return time.time()
        """
    )
    assert lint_source(src) == []


def test_inline_suppression_without_codes_suppresses_all():
    src = _BAD.replace("time.time()", "time.time()  # hnslint: disable")
    assert lint_source(src) == []


def test_inline_suppression_wrong_code_does_not_apply():
    src = _BAD.replace("time.time()", "time.time()  # hnslint: disable=SIM002")
    assert [f.rule for f in lint_source(src)] == ["SIM001"]


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
_BASELINE_TEXT = """
# reviewed exceptions
[[suppression]]
rule = "SIM001"
path = "src/repro/sim/rng.py"
contains = "random.Random"
justification = "the one sanctioned wrapper"

[[suppression]]
rule = "SIM003"
path = "resolver.py"  # suffix match
justification = "entry captured by value"
"""


def _finding(rule, path, snippet):
    return Finding(
        rule=rule, path=path, line=1, col=0, message="m", snippet=snippet
    )


def test_baseline_structural_matching():
    baseline = Baseline.loads(_BASELINE_TEXT)
    assert len(baseline) == 2
    assert baseline.matches(
        _finding("SIM001", "src/repro/sim/rng.py", "x = random.Random(seed)")
    )
    # wrong snippet -> contains filter rejects
    assert not baseline.matches(
        _finding("SIM001", "src/repro/sim/rng.py", "x = time.time()")
    )
    # suffix path match, no contains filter
    assert baseline.matches(
        _finding("SIM003", "src/repro/bind/resolver.py", "anything")
    )
    # wrong rule
    assert not baseline.matches(
        _finding("SIM002", "src/repro/bind/resolver.py", "anything")
    )


def test_baseline_fallback_parser_agrees_with_tomllib():
    data = _parse_toml_subset(_BASELINE_TEXT)
    assert [entry["rule"] for entry in data["suppression"]] == [
        "SIM001",
        "SIM003",
    ]
    assert data["suppression"][1]["path"] == "resolver.py"
    try:
        import tomllib
    except ModuleNotFoundError:
        return
    assert tomllib.loads(_BASELINE_TEXT)["suppression"] == data["suppression"]


def test_baseline_requires_justification():
    with pytest.raises(BaselineError, match="missing key 'justification'"):
        Baseline.loads('[[suppression]]\nrule = "SIM001"\npath = "x.py"\n')
    with pytest.raises(BaselineError, match="empty justification"):
        Baseline.loads(
            '[[suppression]]\nrule = "SIM001"\npath = "x.py"\n'
            'justification = "  "\n'
        )


def test_baseline_fallback_rejects_non_string_values():
    with pytest.raises(BaselineError, match="only basic strings"):
        _parse_toml_subset('[[suppression]]\nrule = 3\n')


def test_repo_baseline_loads_and_every_entry_is_justified(tmp_path):
    import pathlib

    root = pathlib.Path(__file__).resolve().parents[2]
    baseline = Baseline.load(root / "hnslint-baseline.toml")
    assert len(baseline) > 0
    for suppression in baseline.suppressions:
        assert suppression.justification.strip()


# ----------------------------------------------------------------------
# lint_paths + baseline
# ----------------------------------------------------------------------
def test_lint_paths_counts_baselined_findings(tmp_path):
    bad = tmp_path / "clocky.py"
    bad.write_text(_BAD, encoding="utf-8")
    clean = tmp_path / "clean.py"
    clean.write_text(_CLEAN, encoding="utf-8")

    unbaselined = lint_paths([tmp_path])
    assert unbaselined.files_scanned == 2
    assert [f.rule for f in unbaselined.findings] == ["SIM001"]
    assert not unbaselined.ok

    baseline = Baseline(
        [Suppression(rule="SIM001", path="clocky.py", justification="test")]
    )
    baselined = lint_paths([tmp_path], baseline=baseline)
    assert baselined.ok
    assert baselined.baselined == 1


def test_lint_paths_records_parse_errors(tmp_path):
    (tmp_path / "broken.py").write_text("def f(:\n", encoding="utf-8")
    result = lint_paths([tmp_path])
    assert not result.ok
    assert len(result.parse_errors) == 1


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
def test_render_text_summary_and_finding_lines(tmp_path):
    bad = tmp_path / "clocky.py"
    bad.write_text(_BAD, encoding="utf-8")
    result = lint_paths([bad])
    text = render_text(result)
    assert "clocky.py:5:12: SIM001" in text
    assert "hnslint: 1 files scanned, 1 findings (SIM001: 1)" in text


def test_render_json_is_stable_and_versioned(tmp_path):
    bad = tmp_path / "clocky.py"
    bad.write_text(_BAD, encoding="utf-8")
    result = lint_paths([bad])
    payload = json.loads(render_json(result))
    assert payload["version"] == 1
    assert payload["tool"] == "hnslint"
    assert payload["ok"] is False
    assert payload["counts"] == {"SIM001": 1}
    finding = payload["findings"][0]
    assert finding["rule"] == "SIM001"
    assert finding["line"] == 5
    # stable: same input, same output
    assert render_json(result) == render_json(result)


def test_render_json_ok_ands_determinism():
    from repro.analysis.determinism import ScenarioCheck

    clean = LintResult(findings=[], files_scanned=1)
    bad_check = ScenarioCheck(
        scenario="s", seed=0, ok=False, digest_a="a", digest_b="b",
        events_a=1, events_b=1, first_divergence="line 0",
    )
    payload = json.loads(render_json(clean, [bad_check]))
    assert payload["ok"] is False
    assert payload["determinism"][0]["first_divergence"] == "line 0"


# ----------------------------------------------------------------------
# CLI exit codes
# ----------------------------------------------------------------------
def test_cli_exits_zero_on_clean_file(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text(_CLEAN, encoding="utf-8")
    assert run([str(clean), "--no-baseline"]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_cli_exits_nonzero_on_finding(tmp_path, capsys):
    bad = tmp_path / "clocky.py"
    bad.write_text(_BAD, encoding="utf-8")
    assert run([str(bad), "--no-baseline"]) == 1
    assert "SIM001" in capsys.readouterr().out


def test_cli_json_format(tmp_path, capsys):
    bad = tmp_path / "clocky.py"
    bad.write_text(_BAD, encoding="utf-8")
    assert run([str(bad), "--no-baseline", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"] == {"SIM001": 1}


def test_cli_list_rules(capsys):
    assert run(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("SIM001", "SIM002", "SIM003", "HNS001", "HNS002", "HNS003"):
        assert code in out


def test_repo_tree_is_lint_clean_under_checked_in_baseline(capsys):
    """The acceptance gate itself: src/repro lints clean with the baseline."""
    import pathlib

    root = pathlib.Path(__file__).resolve().parents[2]
    exit_code = run(
        [
            str(root / "src" / "repro"),
            "--baseline",
            str(root / "hnslint-baseline.toml"),
        ]
    )
    assert exit_code == 0, capsys.readouterr().out
