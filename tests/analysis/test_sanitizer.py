"""Interleaving sanitizer: happens-before reconstruction and hazards."""

import pytest

from repro.analysis import InterleavingSanitizer
from repro.sim import Environment


class Box:
    def __init__(self):
        self.value = 0


def test_timeout_racing_writer_and_reader_is_flagged():
    """Two processes meeting at the same instant via timeouts only."""
    env = Environment(seed=0)
    sanitizer = InterleavingSanitizer.attach(env)
    box = sanitizer.watch(Box(), "box")

    def writer():
        yield env.timeout(5)
        box.value = 1

    def reader():
        yield env.timeout(5)
        _ = box.value

    env.process(writer(), name="writer")
    env.process(reader(), name="reader")
    env.run()

    hazards = sanitizer.report()
    assert len(hazards) == 1
    hazard = hazards[0]
    assert (hazard.label, hazard.field) == ("box", "value")
    assert {hazard.first.kind, hazard.second.kind} == {"w", "r"}
    description = hazard.describe()
    assert "box.value" in description
    assert "unordered" in description


def test_event_synchronized_pair_is_clean():
    """succeed() -> resume creates a happens-before edge."""
    env = Environment(seed=0)
    sanitizer = InterleavingSanitizer.attach(env)
    box = sanitizer.watch(Box(), "box")
    gate = env.event()

    def writer():
        yield env.timeout(5)
        box.value = 1
        gate.succeed(None)

    def reader():
        yield gate
        _ = box.value

    env.process(writer(), name="writer")
    env.process(reader(), name="reader")
    env.run()

    assert sanitizer.report() == []


def test_program_order_within_one_process_is_clean():
    env = Environment(seed=0)
    sanitizer = InterleavingSanitizer.attach(env)
    box = sanitizer.watch(Box(), "box")

    def proc():
        box.value = 1
        yield env.timeout(5)
        _ = box.value

    env.process(proc(), name="solo")
    env.run()
    assert sanitizer.report() == []


def test_concurrent_reads_are_not_a_hazard():
    env = Environment(seed=0)
    sanitizer = InterleavingSanitizer.attach(env)
    box = sanitizer.watch(Box(), "box")

    def reader():
        yield env.timeout(5)
        _ = box.value

    env.process(reader(), name="r1")
    env.process(reader(), name="r2")
    env.run()
    assert sanitizer.report() == []


def test_setup_accesses_outside_processes_never_race():
    env = Environment(seed=0)
    sanitizer = InterleavingSanitizer.attach(env)
    box = sanitizer.watch(Box(), "box")
    box.value = 7  # setup write, no current segment

    def reader():
        yield env.timeout(1)
        _ = box.value

    env.process(reader(), name="reader")
    env.run()
    assert sanitizer.report() == []


def test_watched_proxy_records_item_and_len_accesses():
    env = Environment(seed=0)
    sanitizer = InterleavingSanitizer.attach(env)
    table = sanitizer.watch({}, "table")

    def writer():
        yield env.timeout(5)
        table["k"] = 1

    def reader():
        yield env.timeout(5)
        _ = "k" in table
        _ = len(table)

    env.process(writer(), name="writer")
    env.process(reader(), name="reader")
    env.run()

    hazards = sanitizer.report()
    assert [h.field for h in hazards] == ["['k']"]


def test_attach_refuses_a_second_monitor_and_detach_restores():
    env = Environment(seed=0)
    sanitizer = InterleavingSanitizer.attach(env)
    with pytest.raises(RuntimeError, match="already has a monitor"):
        InterleavingSanitizer.attach(env)
    sanitizer.detach()
    assert env.monitor is None
    InterleavingSanitizer.attach(env)


def test_instrumented_run_takes_the_same_trajectory():
    """The sanitizer is passive: digests match a bare run exactly."""
    from repro.analysis.determinism import run_digest

    def trajectory(with_monitor):
        env = Environment(seed=1)
        env.trace.enabled = True
        if with_monitor:
            InterleavingSanitizer.attach(env)

        def proc(name):
            rng = env.rng.stream(f"jitter.{name}")
            for _ in range(3):
                yield env.timeout(1 + rng.random())
                env.trace.emit("test", f"tick {name}", t=env.now)

        env.process(proc("a"), name="a")
        env.process(proc("b"), name="b")
        env.run()
        return run_digest(env)

    assert trajectory(False) == trajectory(True)
